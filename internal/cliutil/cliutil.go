// Package cliutil holds the flag and lifecycle helpers shared by the cmd/
// binaries, so their common observability surface cannot drift between
// commands: every CLI registers -log/-log-level through AddLogFlags,
// -sample-interval/-tsdb-out through AddSampleFlags, and flushes -metrics/
// -trace-out through FlushObs. A parity test source-scans cmd/ and fails
// when a command hand-rolls one of these instead.
package cliutil

import (
	"flag"
	"io"
	"os"
	"time"

	"causet/internal/obs"
	"causet/internal/obs/logx"
	"causet/internal/obs/tsdb"
)

// LogFlags carries the shared -log / -log-level flag values.
type LogFlags struct {
	out   *string
	level *string
}

// AddLogFlags registers the canonical -log and -log-level flags on fs.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	return &LogFlags{
		out:   fs.String("log", "", "write a structured JSONL event log to this file (- = stderr)"),
		level: fs.String("log-level", "info", "minimum -log level: debug, info, warn, or error"),
	}
}

// Build constructs the logger the flags describe. The logger is nil when
// -log was not given (logx methods are nil-safe, so callers log
// unconditionally); close releases the log file and must run after the last
// log call. stderr is the writer "-log -" selects.
func (lf *LogFlags) Build(stderr io.Writer) (lg *logx.Logger, close func(), err error) {
	if *lf.out == "" {
		return nil, func() {}, nil
	}
	lvl, err := logx.ParseLevel(*lf.level)
	if err != nil {
		return nil, nil, err
	}
	w := stderr
	close = func() {}
	if *lf.out != "-" {
		f, err := os.Create(*lf.out)
		if err != nil {
			return nil, nil, err
		}
		w = f
		close = func() { f.Close() }
	}
	return logx.New(w, lvl), close, nil
}

// SampleFlags carries the shared -sample-interval / -tsdb-out flag values.
type SampleFlags struct {
	interval *time.Duration
	out      *string
}

// AddSampleFlags registers the canonical -sample-interval and -tsdb-out
// flags on fs.
func AddSampleFlags(fs *flag.FlagSet) *SampleFlags {
	return &SampleFlags{
		interval: fs.Duration("sample-interval", tsdb.DefaultInterval,
			"cadence at which the in-process time-series store samples the metrics registry"),
		out: fs.String("tsdb-out", "",
			"write the sampled time-series store as a JSON dump to this file at exit (- = stderr)"),
	}
}

// Interval reports the parsed -sample-interval.
func (sf *SampleFlags) Interval() time.Duration { return *sf.interval }

// Out reports the parsed -tsdb-out path ("" = none).
func (sf *SampleFlags) Out() string { return *sf.out }

// Telemetry bundles the tsdb store + sampler lifecycle the CLIs share. All
// methods are nil-safe so commands can thread a nil *Telemetry through when
// sampling is off.
type Telemetry struct {
	Store   *tsdb.Store
	Sampler *tsdb.Sampler
}

// NewTelemetry builds a store and a sampler over reg at the given cadence
// without starting the sampling goroutine — wire Sampler.AfterSample (the
// alert engine's evaluation hook) first, then call Start. The store is
// capped at 4096 series so a long-running session whose instrument names
// churn (per-condition gauges under a retention policy) keeps the store
// bounded: far above any steady-state instrument count, and the stalest
// series — always a vanished instrument under a live sampler — is the one
// evicted.
func NewTelemetry(reg *obs.Registry, interval time.Duration) *Telemetry {
	st := tsdb.NewStore(tsdb.Options{MaxSeries: 4096})
	return &Telemetry{Store: st, Sampler: tsdb.NewSampler(reg, st, interval)}
}

// Start launches the sampling goroutine.
func (t *Telemetry) Start() {
	if t == nil {
		return
	}
	t.Sampler.Start()
}

// Stop halts the sampling goroutine; safe on any path, any number of times.
func (t *Telemetry) Stop() {
	if t == nil {
		return
	}
	t.Sampler.Stop()
}

// Close stops the sampler and takes one final sample stamped at now, so even
// a run shorter than the interval leaves the end-state in the store (and, via
// AfterSample, gives the alert engine a final evaluation).
func (t *Telemetry) Close(now time.Time) {
	if t == nil {
		return
	}
	t.Sampler.Stop()
	t.Sampler.SampleOnce(now)
}

// TSDB returns the underlying store (nil on a nil Telemetry), for APIs like
// flight.Recorder.Attach that accept a possibly-nil store.
func (t *Telemetry) TSDB() *tsdb.Store {
	if t == nil {
		return nil
	}
	return t.Store
}

// WriteDump writes the store's full dump ("-" = stderr) as indented JSON —
// the -tsdb-out exit path. No-op when path is empty or t is nil.
func (t *Telemetry) WriteDump(path string, now time.Time, stderr io.Writer) error {
	if t == nil || path == "" {
		return nil
	}
	w := stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return t.Store.Dump(0, now).WriteJSON(w)
}

// FlushObs writes the -metrics snapshot and -trace-out file at the end of a
// run. metricsOut of "-" selects stderr. Either output may be disabled by an
// empty path or a nil registry/tracer.
func FlushObs(reg *obs.Registry, tr *obs.Tracer, metricsOut, traceOut string, stderr io.Writer) error {
	if reg != nil && metricsOut != "" {
		w := stderr
		if metricsOut != "-" {
			f, err := os.Create(metricsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			return err
		}
	}
	if tr != nil && traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		return tr.WriteJSON(f)
	}
	return nil
}
