// Package sim generates synthetic distributed executions for testing and
// benchmarking the relation evaluators. It provides the communication
// patterns that the paper's motivating applications exhibit — client/server
// control loops, rings, broadcasts, pipelines, gossip, and periodic
// real-time rounds — plus unstructured random traffic.
//
// Every generator is deterministic for a given seed, and most patterns also
// return named Phases: the higher-level nonatomic activities (a broadcast
// round, a pipeline item's journey, a periodic job) that applications would
// register as nonatomic events.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"causet/internal/poset"
)

// Pattern selects a workload shape.
type Pattern int

const (
	// Random: unstructured traffic; each event is internal or receives from
	// a random peer's latest event with probability MsgProb.
	Random Pattern = iota
	// Ring: a token circulates Rounds times through all processes in index
	// order. Phase r contains round r's send/receive events.
	Ring
	// ClientServer: process 0 serves Rounds request/reply exchanges from
	// each other process. One phase per client session.
	ClientServer
	// Broadcast: in round r, process r mod Procs sends to every other
	// process. Phase r contains the round's events.
	Broadcast
	// Pipeline: Rounds items flow through the processes in stage order.
	// Phase r contains item r's events across all stages.
	Pipeline
	// Gossip: in each round every process sends one message to a random
	// peer. Phase r contains round r's events.
	Gossip
	// Periodic: a real-time control pattern; in each round every worker
	// process performs Compute local events, reports to the coordinator
	// (process 0), and receives an acknowledgement. Phase r contains round
	// r's events on all processes.
	Periodic
	// Barrier: bulk-synchronous supersteps; in each round every worker
	// performs Compute local events, then all synchronize through a
	// coordinator barrier (process 0 gathers and releases). Phase r is
	// superstep r; by construction consecutive supersteps satisfy R2' and
	// R3 (all of step r precedes step r+1's release; step r's release
	// precedes all of step r+1), and R1 holds at distance two — the tests
	// pin these invariants.
	Barrier
)

var patternNames = map[Pattern]string{
	Random: "random", Ring: "ring", ClientServer: "clientserver",
	Broadcast: "broadcast", Pipeline: "pipeline", Gossip: "gossip",
	Periodic: "periodic", Barrier: "barrier",
}

// String implements fmt.Stringer.
func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern parses a pattern name as printed by String.
func ParsePattern(s string) (Pattern, error) {
	for p, name := range patternNames {
		if s == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown pattern %q", s)
}

// Patterns returns all patterns in declaration order.
func Patterns() []Pattern {
	return []Pattern{Random, Ring, ClientServer, Broadcast, Pipeline, Gossip, Periodic, Barrier}
}

// Config parameterizes a workload.
type Config struct {
	Pattern Pattern
	Procs   int     // number of processes (≥ 2 for communicating patterns)
	Events  int     // total real events (Random only)
	MsgProb float64 // message probability (Random only; default 0.4)
	Rounds  int     // rounds/sessions/items (all patterns except Random)
	Compute int     // per-round local events (Periodic only; default 2)
	Seed    int64   // PRNG seed; same seed ⇒ identical execution
}

// Phase is a named group of events produced by a structured pattern — the
// natural nonatomic events of the workload.
type Phase struct {
	Name   string
	Events []poset.EventID
}

// Result is a generated execution plus its pattern-level phases.
type Result struct {
	Exec   *poset.Execution
	Phases []Phase
}

// Validation errors returned by Generate.
var (
	ErrProcs  = errors.New("sim: Procs must be at least 2")
	ErrEvents = errors.New("sim: Events must be positive for the random pattern")
	ErrRounds = errors.New("sim: Rounds must be positive for structured patterns")
)

// Generate builds the configured workload.
func Generate(cfg Config) (*Result, error) {
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("%w (got %d)", ErrProcs, cfg.Procs)
	}
	if cfg.MsgProb == 0 {
		cfg.MsgProb = 0.4
	}
	if cfg.Compute == 0 {
		cfg.Compute = 2
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Pattern {
	case Random:
		if cfg.Events <= 0 {
			return nil, ErrEvents
		}
		return genRandom(r, cfg)
	case Ring, ClientServer, Broadcast, Pipeline, Gossip, Periodic, Barrier:
		if cfg.Rounds <= 0 {
			return nil, ErrRounds
		}
	default:
		return nil, fmt.Errorf("sim: unknown pattern %d", int(cfg.Pattern))
	}
	switch cfg.Pattern {
	case Ring:
		return genRing(cfg)
	case ClientServer:
		return genClientServer(r, cfg)
	case Broadcast:
		return genBroadcast(cfg)
	case Pipeline:
		return genPipeline(cfg)
	case Gossip:
		return genGossip(r, cfg)
	case Periodic:
		return genPeriodic(cfg)
	default: // Barrier
		return genBarrier(cfg)
	}
}

// MustGenerate is Generate that panics on error, for benchmarks and fixed
// fixtures.
func MustGenerate(cfg Config) *Result {
	res, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

func genRandom(r *rand.Rand, cfg Config) (*Result, error) {
	b := poset.NewBuilder(cfg.Procs)
	lastOn := make([]poset.EventID, cfg.Procs)
	for i := 0; i < cfg.Events; i++ {
		p := r.Intn(cfg.Procs)
		if r.Float64() < cfg.MsgProb {
			q := r.Intn(cfg.Procs - 1)
			if q >= p {
				q++
			}
			if lastOn[q].Pos > 0 {
				recv := b.Append(p)
				if err := b.Message(lastOn[q], recv); err != nil {
					return nil, err
				}
				lastOn[p] = recv
				continue
			}
		}
		lastOn[p] = b.Append(p)
	}
	ex, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Result{Exec: ex}, nil
}

func genRing(cfg Config) (*Result, error) {
	b := poset.NewBuilder(cfg.Procs)
	res := &Result{}
	for round := 0; round < cfg.Rounds; round++ {
		ph := Phase{Name: fmt.Sprintf("ring-round-%d", round)}
		for i := 0; i < cfg.Procs; i++ {
			from, to := i, (i+1)%cfg.Procs
			s, rcv, err := b.SendRecv(from, to)
			if err != nil {
				return nil, err
			}
			ph.Events = append(ph.Events, s, rcv)
		}
		res.Phases = append(res.Phases, ph)
	}
	ex, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Exec = ex
	return res, nil
}

func genClientServer(r *rand.Rand, cfg Config) (*Result, error) {
	b := poset.NewBuilder(cfg.Procs)
	res := &Result{}
	phases := make([]Phase, cfg.Procs-1)
	for c := 1; c < cfg.Procs; c++ {
		phases[c-1].Name = fmt.Sprintf("client-%d-session", c)
	}
	// Interleave the clients' request/reply exchanges in random order.
	type job struct{ client, round int }
	var jobs []job
	for c := 1; c < cfg.Procs; c++ {
		for round := 0; round < cfg.Rounds; round++ {
			jobs = append(jobs, job{client: c, round: round})
		}
	}
	// Shuffle while preserving each client's round order.
	r.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	done := make([]int, cfg.Procs)
	queue := jobs
	for len(queue) > 0 {
		next := queue[0]
		queue = queue[1:]
		if next.round != done[next.client] {
			queue = append(queue, next) // not this client's turn yet
			continue
		}
		done[next.client]++
		req, srecv, err := b.SendRecv(next.client, 0)
		if err != nil {
			return nil, err
		}
		work := b.Append(0)
		rep, crecv, err := b.SendRecv(0, next.client)
		if err != nil {
			return nil, err
		}
		phases[next.client-1].Events = append(phases[next.client-1].Events, req, srecv, work, rep, crecv)
	}
	ex, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Exec = ex
	res.Phases = phases
	return res, nil
}

func genBroadcast(cfg Config) (*Result, error) {
	b := poset.NewBuilder(cfg.Procs)
	res := &Result{}
	for round := 0; round < cfg.Rounds; round++ {
		root := round % cfg.Procs
		ph := Phase{Name: fmt.Sprintf("broadcast-round-%d", round)}
		for i := 0; i < cfg.Procs; i++ {
			if i == root {
				continue
			}
			s, rcv, err := b.SendRecv(root, i)
			if err != nil {
				return nil, err
			}
			ph.Events = append(ph.Events, s, rcv)
		}
		res.Phases = append(res.Phases, ph)
	}
	ex, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Exec = ex
	return res, nil
}

func genPipeline(cfg Config) (*Result, error) {
	b := poset.NewBuilder(cfg.Procs)
	res := &Result{}
	for item := 0; item < cfg.Rounds; item++ {
		ph := Phase{Name: fmt.Sprintf("pipeline-item-%d", item)}
		intake := b.Append(0)
		ph.Events = append(ph.Events, intake)
		for stage := 0; stage+1 < cfg.Procs; stage++ {
			s, rcv, err := b.SendRecv(stage, stage+1)
			if err != nil {
				return nil, err
			}
			ph.Events = append(ph.Events, s, rcv)
		}
		res.Phases = append(res.Phases, ph)
	}
	ex, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Exec = ex
	return res, nil
}

func genGossip(r *rand.Rand, cfg Config) (*Result, error) {
	b := poset.NewBuilder(cfg.Procs)
	res := &Result{}
	for round := 0; round < cfg.Rounds; round++ {
		ph := Phase{Name: fmt.Sprintf("gossip-round-%d", round)}
		for i := 0; i < cfg.Procs; i++ {
			peer := r.Intn(cfg.Procs - 1)
			if peer >= i {
				peer++
			}
			s, rcv, err := b.SendRecv(i, peer)
			if err != nil {
				return nil, err
			}
			ph.Events = append(ph.Events, s, rcv)
		}
		res.Phases = append(res.Phases, ph)
	}
	ex, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Exec = ex
	return res, nil
}

func genPeriodic(cfg Config) (*Result, error) {
	b := poset.NewBuilder(cfg.Procs)
	res := &Result{}
	for round := 0; round < cfg.Rounds; round++ {
		ph := Phase{Name: fmt.Sprintf("periodic-round-%d", round)}
		for w := 1; w < cfg.Procs; w++ {
			for k := 0; k < cfg.Compute; k++ {
				ph.Events = append(ph.Events, b.Append(w))
			}
			rep, crecv, err := b.SendRecv(w, 0)
			if err != nil {
				return nil, err
			}
			ack, wrecv, err := b.SendRecv(0, w)
			if err != nil {
				return nil, err
			}
			ph.Events = append(ph.Events, rep, crecv, ack, wrecv)
		}
		res.Phases = append(res.Phases, ph)
	}
	ex, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Exec = ex
	return res, nil
}

// genBarrier emits bulk-synchronous supersteps: every worker computes, then
// reports to the coordinator (gather); once all reports are in, the
// coordinator releases every worker (scatter). Each superstep's release
// event follows everything in the previous step and precedes everything in
// the next, so consecutive phases satisfy R2' ∧ R3 and phases two apart
// satisfy full R1 — the barrier semantics expressed in the relation family.
func genBarrier(cfg Config) (*Result, error) {
	b := poset.NewBuilder(cfg.Procs)
	res := &Result{}
	for round := 0; round < cfg.Rounds; round++ {
		ph := Phase{Name: fmt.Sprintf("superstep-%d", round)}
		// Compute + gather.
		for w := 1; w < cfg.Procs; w++ {
			for k := 0; k < cfg.Compute; k++ {
				ph.Events = append(ph.Events, b.Append(w))
			}
			send, recv, err := b.SendRecv(w, 0)
			if err != nil {
				return nil, err
			}
			ph.Events = append(ph.Events, send, recv)
		}
		// Barrier release: one coordinator event after all gathers, then a
		// release message to every worker.
		release := b.Append(0)
		ph.Events = append(ph.Events, release)
		for w := 1; w < cfg.Procs; w++ {
			send, recv, err := b.SendRecv(0, w)
			if err != nil {
				return nil, err
			}
			ph.Events = append(ph.Events, send, recv)
		}
		res.Phases = append(res.Phases, ph)
	}
	ex, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Exec = ex
	return res, nil
}

// ExtremalPair returns two disjoint event sets spanning every process of ex:
// X holds the first real event of each process and Y the last. It requires
// at least two real events on every process (so the sets are disjoint) and
// is the standard instance for the complexity sweeps, where |N_X| = |N_Y| =
// NumProcs.
func ExtremalPair(ex *poset.Execution) (x, y []poset.EventID, err error) {
	return SpanPair(ex, 1)
}

// SpanPair generalizes ExtremalPair: X holds the first k real events of each
// process and Y the last k, so |X| = |Y| = k·NumProcs while |N_X| = |N_Y| =
// NumProcs. It requires at least 2k real events on every process (so the
// sets are disjoint). With k > 1 the naive |X|·|Y| evaluation is visibly
// more expensive than the |N_X|·|N_Y| proxy evaluation in the sweeps.
func SpanPair(ex *poset.Execution, k int) (x, y []poset.EventID, err error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("sim: SpanPair with k=%d", k)
	}
	for p := 0; p < ex.NumProcs(); p++ {
		if ex.NumReal(p) < 2*k {
			return nil, nil, fmt.Errorf("sim: process %d has %d events, need ≥ %d", p, ex.NumReal(p), 2*k)
		}
		for i := 1; i <= k; i++ {
			x = append(x, poset.EventID{Proc: p, Pos: i})
			y = append(y, poset.EventID{Proc: p, Pos: ex.NumReal(p) - k + i})
		}
	}
	return x, y, nil
}
