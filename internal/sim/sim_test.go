package sim

import (
	"errors"
	"testing"

	"causet/internal/core"
	"causet/internal/interval"
	"causet/internal/poset"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Pattern: Random, Procs: 1, Events: 10}); !errors.Is(err, ErrProcs) {
		t.Errorf("procs=1: err = %v, want ErrProcs", err)
	}
	if _, err := Generate(Config{Pattern: Random, Procs: 3}); !errors.Is(err, ErrEvents) {
		t.Errorf("events=0: err = %v, want ErrEvents", err)
	}
	if _, err := Generate(Config{Pattern: Ring, Procs: 3}); !errors.Is(err, ErrRounds) {
		t.Errorf("rounds=0: err = %v, want ErrRounds", err)
	}
	if _, err := Generate(Config{Pattern: Pattern(99), Procs: 3, Rounds: 1}); err == nil {
		t.Errorf("unknown pattern accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, p := range Patterns() {
		cfg := Config{Pattern: p, Procs: 4, Events: 40, Rounds: 5, Seed: 42}
		a := MustGenerate(cfg)
		b := MustGenerate(cfg)
		sa, sb := a.Exec.Stats(), b.Exec.Stats()
		if sa != sb {
			t.Errorf("%v: stats differ across identical seeds: %+v vs %+v", p, sa, sb)
		}
		ma, mb := a.Exec.Messages(), b.Exec.Messages()
		if len(ma) != len(mb) {
			t.Errorf("%v: message counts differ", p)
			continue
		}
		for i := range ma {
			if ma[i] != mb[i] {
				t.Errorf("%v: message %d differs", p, i)
				break
			}
		}
	}
	// Different seeds should give different random executions.
	a := MustGenerate(Config{Pattern: Random, Procs: 4, Events: 60, Seed: 1})
	b := MustGenerate(Config{Pattern: Random, Procs: 4, Events: 60, Seed: 2})
	if len(a.Exec.Messages()) == len(b.Exec.Messages()) {
		same := true
		for i := range a.Exec.Messages() {
			if a.Exec.Messages()[i] != b.Exec.Messages()[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical random executions")
		}
	}
}

func TestPatternShapes(t *testing.T) {
	const procs, rounds = 4, 3
	for _, tc := range []struct {
		pattern    Pattern
		wantEvents int
		wantMsgs   int
		wantPhases int
	}{
		{Ring, 2 * procs * rounds, procs * rounds, rounds},
		{Broadcast, 2 * (procs - 1) * rounds, (procs - 1) * rounds, rounds},
		{Pipeline, (1 + 2*(procs-1)) * rounds, (procs - 1) * rounds, rounds},
		{Gossip, 2 * procs * rounds, procs * rounds, rounds},
		{ClientServer, 5 * (procs - 1) * rounds, 2 * (procs - 1) * rounds, procs - 1},
		{Periodic, (2 + 4) * (procs - 1) * rounds, 2 * (procs - 1) * rounds, rounds},
		{Barrier, ((2+2)*(procs-1) + 1 + 2*(procs-1)) * rounds, 2 * (procs - 1) * rounds, rounds},
	} {
		res := MustGenerate(Config{Pattern: tc.pattern, Procs: procs, Rounds: rounds, Seed: 7})
		st := res.Exec.Stats()
		if st.Events != tc.wantEvents {
			t.Errorf("%v: events = %d, want %d", tc.pattern, st.Events, tc.wantEvents)
		}
		if st.Messages != tc.wantMsgs {
			t.Errorf("%v: messages = %d, want %d", tc.pattern, st.Messages, tc.wantMsgs)
		}
		if len(res.Phases) != tc.wantPhases {
			t.Errorf("%v: phases = %d, want %d", tc.pattern, len(res.Phases), tc.wantPhases)
		}
	}
}

func TestPhasesAreValidDisjointIntervals(t *testing.T) {
	for _, p := range []Pattern{Ring, ClientServer, Broadcast, Pipeline, Gossip, Periodic, Barrier} {
		res := MustGenerate(Config{Pattern: p, Procs: 5, Rounds: 4, Seed: 11})
		seen := make(map[poset.EventID]string)
		total := 0
		for _, ph := range res.Phases {
			if ph.Name == "" {
				t.Errorf("%v: phase without a name", p)
			}
			if _, err := interval.New(res.Exec, ph.Events); err != nil {
				t.Errorf("%v: phase %q is not a valid interval: %v", p, ph.Name, err)
			}
			for _, e := range ph.Events {
				if prev, dup := seen[e]; dup {
					t.Errorf("%v: event %v in both %q and %q", p, e, prev, ph.Name)
				}
				seen[e] = ph.Name
			}
			total += len(ph.Events)
		}
		if total != res.Exec.NumEvents() {
			t.Errorf("%v: phases cover %d events of %d", p, total, res.Exec.NumEvents())
		}
	}
}

// TestRingRoundOrdering checks the structural property that makes Ring a
// good fixture: consecutive token rounds are totally ordered (R1 holds
// between round r and round r+1).
func TestRingRoundOrdering(t *testing.T) {
	res := MustGenerate(Config{Pattern: Ring, Procs: 4, Rounds: 3, Seed: 3})
	a := core.NewAnalysis(res.Exec)
	fast := core.NewFast(a)
	for r := 0; r+1 < len(res.Phases); r++ {
		x := interval.MustNew(res.Exec, res.Phases[r].Events)
		y := interval.MustNew(res.Exec, res.Phases[r+1].Events)
		// The first send of round r is concurrent with nothing before it, so
		// full R1 does not hold; but R2 (every event of round r precedes
		// something in round r+1) and R3' must.
		for _, rel := range []core.Relation{core.R2, core.R3Prime, core.R4} {
			if !fast.Eval(rel, x, y) {
				t.Errorf("round %d → %d: %v should hold on a ring", r, r+1, rel)
			}
		}
		if fast.Eval(core.R1, y, x) {
			t.Errorf("round %d wholly precedes round %d: causality inverted", r+1, r)
		}
	}
}

// TestPipelineItemOrdering: in a pipeline, item r's intake precedes item
// r+1's exit, and R1 never holds backwards.
func TestPipelineItemOrdering(t *testing.T) {
	res := MustGenerate(Config{Pattern: Pipeline, Procs: 3, Rounds: 4, Seed: 5})
	a := core.NewAnalysis(res.Exec)
	fast := core.NewFast(a)
	for r := 0; r+1 < len(res.Phases); r++ {
		x := interval.MustNew(res.Exec, res.Phases[r].Events)
		y := interval.MustNew(res.Exec, res.Phases[r+1].Events)
		if !fast.Eval(core.R4, x, y) {
			t.Errorf("item %d → %d: R4 should hold in a pipeline", r, r+1)
		}
		if fast.Eval(core.R1, y, x) {
			t.Errorf("item %d wholly precedes item %d: causality inverted", r+1, r)
		}
	}
}

// TestBarrierSuperstepInvariants pins the barrier semantics in relation
// form: consecutive supersteps satisfy R2' ∧ R3 but not R1; supersteps two
// apart satisfy full R1.
func TestBarrierSuperstepInvariants(t *testing.T) {
	res := MustGenerate(Config{Pattern: Barrier, Procs: 4, Rounds: 3, Seed: 13})
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	a := core.NewAnalysis(res.Exec)
	fast := core.NewFast(a)
	steps := make([]*interval.Interval, len(res.Phases))
	for i, ph := range res.Phases {
		steps[i] = interval.MustNew(res.Exec, ph.Events)
	}
	for r := 0; r+1 < len(steps); r++ {
		for _, rel := range []core.Relation{core.R2Prime, core.R3} {
			if !fast.Eval(rel, steps[r], steps[r+1]) {
				t.Errorf("superstep %d → %d: %v should hold", r, r+1, rel)
			}
		}
		if fast.Eval(core.R1, steps[r], steps[r+1]) {
			t.Errorf("superstep %d → %d: R1 should NOT hold (release receives are concurrent with other workers' next computes)", r, r+1)
		}
	}
	if !fast.Eval(core.R1, steps[0], steps[2]) {
		t.Errorf("superstep 0 → 2: R1 should hold across a full barrier")
	}
}

func TestExtremalPair(t *testing.T) {
	res := MustGenerate(Config{Pattern: Ring, Procs: 5, Rounds: 3, Seed: 9})
	x, y, err := ExtremalPair(res.Exec)
	if err != nil {
		t.Fatal(err)
	}
	ix := interval.MustNew(res.Exec, x)
	iy := interval.MustNew(res.Exec, y)
	if ix.NodeCount() != 5 || iy.NodeCount() != 5 {
		t.Errorf("node counts = %d,%d, want 5,5", ix.NodeCount(), iy.NodeCount())
	}
	if ix.Overlaps(iy) {
		t.Errorf("extremal pair overlaps")
	}
	// A process with fewer than two events must be rejected.
	b := poset.NewBuilder(2)
	b.Append(0)
	b.Append(0)
	b.Append(1) // only one event on p1
	ex := b.MustBuild()
	if _, _, err := ExtremalPair(ex); err == nil {
		t.Errorf("ExtremalPair accepted a 1-event process")
	}
}

func TestPatternStringsAndParse(t *testing.T) {
	for _, p := range Patterns() {
		s := p.String()
		if s == "" {
			t.Errorf("empty name for pattern %d", int(p))
		}
		got, err := ParsePattern(s)
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePattern("nope"); err == nil {
		t.Errorf("ParsePattern accepted junk")
	}
	if Pattern(99).String() == "" {
		t.Errorf("unknown pattern must still render")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustGenerate did not panic")
		}
	}()
	MustGenerate(Config{Pattern: Ring, Procs: 0})
}
