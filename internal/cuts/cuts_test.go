package cuts

import (
	"errors"
	"math/rand"
	"testing"

	"causet/internal/poset"
	"causet/internal/poset/posettest"
	"causet/internal/vclock"
)

func fixture(t *testing.T) (*poset.Execution, *vclock.Clocks) {
	t.Helper()
	b := poset.NewBuilder(3)
	a1 := b.Append(0)
	b1 := b.Append(1)
	if err := b.Message(a1, b1); err != nil {
		t.Fatal(err)
	}
	b2 := b.Append(1)
	b.Append(2) // c1
	c2 := b.Append(2)
	if err := b.Message(b2, c2); err != nil {
		t.Fatal(err)
	}
	b.Append(0) // a2
	ex := b.MustBuild()
	return ex, vclock.New(ex)
}

func TestBasicCutOps(t *testing.T) {
	ex, _ := fixture(t)
	bot := Bottom(ex)
	full := Full(ex)
	if !bot.IsBottom() || full.IsBottom() {
		t.Errorf("IsBottom misreports")
	}
	if !bot.Subset(full) || full.Subset(bot) {
		t.Errorf("Subset misreports")
	}
	if !bot.Equal(Cut{0, 0, 0}) {
		t.Errorf("Bottom = %v", bot)
	}
	if !full.Equal(Cut{3, 3, 3}) {
		t.Errorf("Full = %v", full)
	}
	c := FromEvents(ex, []poset.EventID{{Proc: 0, Pos: 2}, {Proc: 2, Pos: 1}})
	if !c.Equal(Cut{2, 0, 1}) {
		t.Errorf("FromEvents = %v", c)
	}
	if !c.Contains(poset.EventID{Proc: 0, Pos: 1}) || c.Contains(poset.EventID{Proc: 1, Pos: 1}) {
		t.Errorf("Contains misreports on %v", c)
	}
	if !c.Contains(poset.EventID{Proc: 1, Pos: 0}) {
		t.Errorf("cut must contain E^⊥")
	}
	d := c.Clone()
	d[0] = 0
	if c[0] != 2 {
		t.Errorf("Clone aliases")
	}
	if got := c.Union(d); !got.Equal(Cut{2, 0, 1}) {
		t.Errorf("Union = %v", got)
	}
	if got := c.Intersect(d); !got.Equal(Cut{0, 0, 1}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := c.String(); got != "cut[2 0 1]" {
		t.Errorf("String = %q", got)
	}
	if got := c.NodeSet(ex); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("NodeSet = %v, want [0 2]", got)
	}
	s := c.Surface()
	want := []poset.EventID{{Proc: 0, Pos: 2}, {Proc: 1, Pos: 0}, {Proc: 2, Pos: 1}}
	for i := range s {
		if s[i] != want[i] {
			t.Errorf("Surface[%d] = %v, want %v", i, s[i], want[i])
		}
		if c.SurfaceAt(i) != want[i] {
			t.Errorf("SurfaceAt(%d) = %v", i, c.SurfaceAt(i))
		}
	}
	evs := c.Events(ex)
	if len(evs) != 3+2+1 { // (⊥,1,2) + (⊥) + (⊥,1)... positions 0..f per node
		t.Errorf("Events len = %d: %v", len(evs), evs)
	}
}

func TestFromSet(t *testing.T) {
	ex, _ := fixture(t)
	good := map[poset.EventID]bool{
		{Proc: 0, Pos: 1}: true,
		{Proc: 0, Pos: 2}: true,
		{Proc: 2, Pos: 1}: true,
	}
	c, err := FromSet(ex, good)
	if err != nil {
		t.Fatalf("FromSet(good): %v", err)
	}
	if !c.Equal(Cut{2, 0, 1}) {
		t.Errorf("FromSet = %v", c)
	}
	bad := map[poset.EventID]bool{
		{Proc: 0, Pos: 2}: true, // missing position 1
	}
	if _, err := FromSet(ex, bad); !errors.Is(err, ErrNotDownwardClosed) {
		t.Errorf("FromSet(bad) err = %v, want ErrNotDownwardClosed", err)
	}
	if _, err := FromSet(ex, map[poset.EventID]bool{{Proc: 9, Pos: 1}: true}); err == nil {
		t.Errorf("FromSet accepted invalid event")
	}
	// false entries are ignored
	c2, err := FromSet(ex, map[poset.EventID]bool{{Proc: 0, Pos: 2}: false})
	if err != nil || !c2.IsBottom() {
		t.Errorf("FromSet with false entries = %v, %v", c2, err)
	}
}

// downSet builds ↓e explicitly from the causality oracle (Definition 8).
func downSet(ex *poset.Execution, e poset.EventID) map[poset.EventID]bool {
	set := make(map[poset.EventID]bool)
	for _, f := range ex.AllEvents() {
		if ex.PrecedesEq(f, e) {
			set[f] = true
		}
	}
	return set
}

// upSet builds e↑ explicitly from the causality oracle (Definition 9):
// all events not ⪰ e, plus on each node the earliest event that is ⪰ e.
func upSet(ex *poset.Execution, e poset.EventID) map[poset.EventID]bool {
	set := make(map[poset.EventID]bool)
	for _, f := range ex.AllEvents() {
		if !ex.PrecedesEq(e, f) {
			set[f] = true
		}
	}
	for i := 0; i < ex.NumProcs(); i++ {
		for pos := 0; pos <= ex.TopPos(i); pos++ {
			f := poset.EventID{Proc: i, Pos: pos}
			if ex.PrecedesEq(e, f) {
				set[f] = true // earliest ⪰ e on node i
				break
			}
		}
	}
	return set
}

func TestDownMatchesDefinition8(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 4+r.Intn(16), 0.4)
		clk := vclock.New(ex)
		for _, e := range ex.RealEvents() {
			want, err := FromSet(ex, downSet(ex, e))
			if err != nil {
				t.Fatalf("↓%v is not downward-closed per node: %v", e, err)
			}
			if got := Down(clk, e); !got.Equal(want) {
				t.Fatalf("Down(%v) = %v, want %v", e, got, want)
			}
		}
	}
}

func TestUpMatchesDefinition9(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 4+r.Intn(16), 0.4)
		clk := vclock.New(ex)
		for _, e := range ex.RealEvents() {
			want, err := FromSet(ex, upSet(ex, e))
			if err != nil {
				t.Fatalf("%v↑ is not downward-closed per node: %v", e, err)
			}
			if got := Up(clk, e); !got.Equal(want) {
				t.Fatalf("Up(%v) = %v, want %v", e, got, want)
			}
		}
	}
}

func TestDownUpPanicOnDummies(t *testing.T) {
	ex, clk := fixture(t)
	for _, fn := range []func(){
		func() { Down(clk, ex.Bottom(0)) },
		func() { Down(clk, ex.Top(1)) },
		func() { Up(clk, ex.Bottom(2)) },
		func() { Up(clk, poset.EventID{Proc: 0, Pos: 99}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for dummy/invalid event")
				}
			}()
			fn()
		}()
	}
	for _, fn := range []func(){
		func() { IntersectDown(clk, nil) },
		func() { UnionUp(clk, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for empty nonatomic event")
				}
			}()
			fn()
		}()
	}
}

// TestTable2CutTimestamps is experiment E2: the timestamp (frontier) forms
// of C1–C4 computed via Lemma 16's min/max rules equal the cuts built
// set-theoretically from Definition 10, and Lemma 11 holds (the sets are
// per-node downward closed).
func TestTable2CutTimestamps(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		ex := posettest.Random(r, 2+r.Intn(5), 4+r.Intn(20), 0.4)
		clk := vclock.New(ex)
		x := posettest.RandomInterval(r, ex, 6)
		if x == nil {
			continue
		}
		// Set-theoretic constructions of Definition 10.
		interDown := intersectSets(ex, x, downSet)
		unionDown := unionSets(ex, x, downSet)
		interUp := intersectSets(ex, x, upSet)
		unionUp := unionSets(ex, x, upSet)
		for name, tc := range map[string]struct {
			got  Cut
			want map[poset.EventID]bool
		}{
			"C1=∩⇓X": {IntersectDown(clk, x), interDown},
			"C2=∪⇓X": {UnionDown(clk, x), unionDown},
			"C3=∩⇑X": {IntersectUp(clk, x), interUp},
			"C4=∪⇑X": {UnionUp(clk, x), unionUp},
		} {
			want, err := FromSet(ex, tc.want)
			if err != nil {
				t.Fatalf("trial %d: %s violates Lemma 11: %v", trial, name, err)
			}
			if !tc.got.Equal(want) {
				t.Fatalf("trial %d: %s = %v, want %v (X=%v)", trial, name, tc.got, want, x)
			}
		}
	}
}

func intersectSets(ex *poset.Execution, x []poset.EventID, base func(*poset.Execution, poset.EventID) map[poset.EventID]bool) map[poset.EventID]bool {
	acc := base(ex, x[0])
	for _, e := range x[1:] {
		next := base(ex, e)
		for k := range acc {
			if !next[k] {
				delete(acc, k)
			}
		}
	}
	return acc
}

func unionSets(ex *poset.Execution, x []poset.EventID, base func(*poset.Execution, poset.EventID) map[poset.EventID]bool) map[poset.EventID]bool {
	acc := make(map[poset.EventID]bool)
	for _, e := range x {
		for k, v := range base(ex, e) {
			if v {
				acc[k] = true
			}
		}
	}
	return acc
}

// TestLemma12 verifies the four membership properties relating a poset's
// events to the surfaces of its cuts.
func TestLemma12(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		ex := posettest.Random(r, 2+r.Intn(5), 4+r.Intn(20), 0.4)
		clk := vclock.New(ex)
		x := posettest.RandomInterval(r, ex, 6)
		if x == nil {
			continue
		}
		// 12.1: ∀e' ∈ S(∩⇓X) ∀x: e' ⪯ x.
		for _, ep := range IntersectDown(clk, x).Surface() {
			for _, xe := range x {
				if !ex.PrecedesEq(ep, xe) {
					t.Fatalf("trial %d: Lemma 12.1 violated: %v ⋠ %v", trial, ep, xe)
				}
			}
		}
		// 12.2: ∀e' ∈ S(∪⇓X) ∃x: e' ⪯ x. (⊥ surface events precede all.)
		for _, ep := range UnionDown(clk, x).Surface() {
			ok := false
			for _, xe := range x {
				if ex.PrecedesEq(ep, xe) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: Lemma 12.2 violated at %v", trial, ep)
			}
		}
		// 12.3: ∀e' ∈ S(∩⇑X) ∃x: x ⪯ e'.
		for _, ep := range IntersectUp(clk, x).Surface() {
			ok := false
			for _, xe := range x {
				if ex.PrecedesEq(xe, ep) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: Lemma 12.3 violated at %v", trial, ep)
			}
		}
		// 12.4: ∀e' ∈ S(∪⇑X) ∀x: x ⪯ e'.
		for _, ep := range UnionUp(clk, x).Surface() {
			for _, xe := range x {
				if !ex.PrecedesEq(xe, ep) {
					t.Fatalf("trial %d: Lemma 12.4 violated: %v ⋠ %v", trial, xe, ep)
				}
			}
		}
	}
}

// randomCut draws a uniformly random frontier vector.
func randomCut(r *rand.Rand, ex *poset.Execution) Cut {
	c := make(Cut, ex.NumProcs())
	for i := range c {
		c[i] = r.Intn(ex.TopPos(i) + 1)
	}
	return c
}

// TestDefinition7FormsAgree verifies that the frontier-based Less and all
// four literal forms of Definition 7 coincide on random cut pairs, including
// bottom/full corner cases and nodes without real events.
func TestDefinition7FormsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		procs := 2 + r.Intn(5)
		// Occasionally force a process with zero real events.
		ex := posettest.Random(r, procs, 3+r.Intn(15), 0.4)
		pairs := [][2]Cut{
			{Bottom(ex), Bottom(ex)},
			{Bottom(ex), Full(ex)},
			{Full(ex), Bottom(ex)},
			{Full(ex), Full(ex)},
		}
		for k := 0; k < 25; k++ {
			pairs = append(pairs, [2]Cut{randomCut(r, ex), randomCut(r, ex)})
		}
		for _, pr := range pairs {
			c, d := pr[0], pr[1]
			want := Less(c, d)
			for form := 1; form <= 4; form++ {
				if got := LessForm(ex, c, d, form); got != want {
					t.Fatalf("trial %d: form %d disagrees: Less(%v,%v)=%v, form=%v",
						trial, form, c, d, want, got)
				}
			}
			if NotLess(c, d) == want {
				t.Fatalf("NotLess must be the negation of Less")
			}
		}
	}
}

func TestLessFormPanicsOnBadForm(t *testing.T) {
	ex, _ := fixture(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for form 0")
		}
	}()
	LessForm(ex, Bottom(ex), Full(ex), 0)
}

// TestLessIsStrictOrder checks irreflexivity, transitivity, and that ≪
// implies proper subset, on random cuts.
func TestLessIsStrictOrder(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 3+r.Intn(12), 0.4)
		var cs []Cut
		for k := 0; k < 12; k++ {
			cs = append(cs, randomCut(r, ex))
		}
		cs = append(cs, Bottom(ex), Full(ex))
		for _, a := range cs {
			if Less(a, a) {
				t.Fatalf("≪ must be irreflexive: %v", a)
			}
			for _, b := range cs {
				if Less(a, b) {
					if !a.Subset(b) || a.Equal(b) {
						t.Fatalf("≪(%v,%v) but not proper subset", a, b)
					}
				}
				for _, c := range cs {
					if Less(a, b) && Less(b, c) && !Less(a, c) {
						t.Fatalf("≪ not transitive: %v %v %v", a, b, c)
					}
				}
			}
		}
	}
}

// TestTheorem19Restricted is the cuts-level statement of Theorem 19, with
// the soundness refinement this reproduction establishes (see DESIGN.md and
// EXPERIMENTS.md): the restricted violation test for ⊀⊀(↓Y, X↑) is complete
//
//   - on the N_X components whenever X↑ ∈ {∩⇑X, x↑} (Key Idea 2's "earliest
//     possible surface events" premise holds for the intersection cut), and
//   - on the N_Y components whenever ↓Y ∈ {∪⇓Y, ↓y} ("latest possible
//     surface events" holds for the union cut),
//
// and in every case a restricted hit implies a full violation. The pairing
// (∪⇓Y, ∩⇑X) — relation R4 — is therefore testable on either side, i.e. in
// min(|N_X|, |N_Y|) comparisons, exactly as the paper states; the pairings
// (∩⇓Y, ∩⇑X) (R3) and (∪⇓Y, ∪⇑X) (R2') are one-sided (see
// TestTheorem19NYSideCounterexample). Comparison counts never exceed the
// size of the node set inspected.
func TestTheorem19Restricted(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 400; trial++ {
		ex := posettest.Random(r, 2+r.Intn(6), 4+r.Intn(24), 0.45)
		clk := vclock.New(ex)
		x, y := posettest.DisjointIntervals(r, ex, 5)
		if x == nil {
			continue
		}
		nx := nodeSetOf(x)
		ny := nodeSetOf(y)
		downs := []struct {
			cut     Cut
			nySound bool
		}{
			{IntersectDown(clk, y), false}, // ∩⇓Y
			{UnionDown(clk, y), true},      // ∪⇓Y
		}
		ups := []struct {
			cut     Cut
			nxSound bool
		}{
			{IntersectUp(clk, x), true}, // ∩⇑X
			{UnionUp(clk, x), false},    // ∪⇑X
		}
		for di, down := range downs {
			for ui, up := range ups {
				want := NotLess(down.cut, up.cut)
				var ctrX, ctrY Counter
				gotX := NotLessOn(down.cut, up.cut, nx, &ctrX)
				gotY := NotLessOn(down.cut, up.cut, ny, &ctrY)
				// Soundness: a restricted hit is always a genuine violation.
				if (gotX || gotY) && !want {
					t.Fatalf("trial %d d%d u%d: restricted test fired without a full violation", trial, di, ui)
				}
				// Completeness on the guaranteed sides.
				if up.nxSound && gotX != want {
					t.Fatalf("trial %d d%d u%d: N_X-restricted test incomplete: full=%v got=%v\nX=%v Y=%v ↓Y=%v X↑=%v",
						trial, di, ui, want, gotX, x, y, down.cut, up.cut)
				}
				if down.nySound && gotY != want {
					t.Fatalf("trial %d d%d u%d: N_Y-restricted test incomplete: full=%v got=%v\nX=%v Y=%v ↓Y=%v X↑=%v",
						trial, di, ui, want, gotY, x, y, down.cut, up.cut)
				}
				if ctrX.Count() > int64(len(nx)) || ctrY.Count() > int64(len(ny)) {
					t.Fatalf("trial %d: comparison counts %d,%d exceed |N_X|=%d,|N_Y|=%d",
						trial, ctrX.Count(), ctrY.Count(), len(nx), len(ny))
				}
			}
		}
	}
}

// TestTheorem19NYSideCounterexample pins the refinement above with a
// concrete instance: for the pairing (∩⇓Y, ∩⇑X) used by relation R3, the
// N_Y-restricted test can miss a genuine violation, so Theorem 19's blanket
// min(|N_X|,|N_Y|) does not hold for that pairing (|N_X| does).
//
// Construction: p1:1 is known to every member of Y (so R3's witness exists
// and the full test fires at node 1 ∈ N_X), but no single member of Y knows
// the frontier of ∩⇑X at any node of N_Y, because Y's members live on nodes
// 0 and 2 and each is ignorant of the other's node.
func TestTheorem19NYSideCounterexample(t *testing.T) {
	b := poset.NewBuilder(3)
	x1 := b.Append(1) // p1:1 — the R3 witness
	// p1:1 → p0:1 and p1:1 → p2:1 so both Y members know x1.
	y0 := b.Append(0)
	if err := b.Message(x1, y0); err != nil {
		t.Fatal(err)
	}
	y2 := b.Append(2)
	if err := b.Message(x1, y2); err != nil {
		t.Fatal(err)
	}
	b.Append(1) // p1:2, second X member
	ex := b.MustBuild()
	clk := vclock.New(ex)

	x := []poset.EventID{{Proc: 1, Pos: 1}, {Proc: 1, Pos: 2}}
	y := []poset.EventID{y0, y2}
	down := IntersectDown(clk, y) // ∩⇓Y
	up := IntersectUp(clk, x)     // ∩⇑X

	if !NotLess(down, up) {
		t.Fatalf("full violation expected: ↓Y=%v X↑=%v", down, up)
	}
	if !NotLessOn(down, up, nodeSetOf(x), nil) {
		t.Fatalf("N_X-restricted test must detect the violation")
	}
	if NotLessOn(down, up, nodeSetOf(y), nil) {
		t.Fatalf("expected the N_Y-restricted test to miss the violation; " +
			"if it now detects it, the documented Theorem 19 refinement needs revisiting")
	}
}

func nodeSetOf(events []poset.EventID) []int {
	seen := make(map[int]bool)
	var out []int
	for _, e := range events {
		if !seen[e.Proc] {
			seen[e.Proc] = true
			out = append(out, e.Proc)
		}
	}
	return out
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(2)
	if c.Count() != 5 {
		t.Errorf("Count = %d", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Errorf("Reset failed")
	}
	var nilC *Counter
	nilC.Add(10) // must not panic
	if nilC.Count() != 0 {
		t.Errorf("nil counter counts")
	}
	nilC.Reset() // must not panic
}

// TestKeyIdea1Reuse demonstrates Key Idea 1: the four cuts of X are
// computed once and reused; repeated queries return equal values.
func TestKeyIdea1Reuse(t *testing.T) {
	ex, clk := fixture(t)
	_ = ex
	x := []poset.EventID{{Proc: 0, Pos: 1}, {Proc: 1, Pos: 2}}
	c1 := IntersectDown(clk, x)
	c2 := IntersectDown(clk, x)
	if !c1.Equal(c2) {
		t.Errorf("cut construction is not deterministic")
	}
	// Mutating the returned cut must not corrupt the clocks' internals.
	c1[0] = 99
	if c3 := IntersectDown(clk, x); !c3.Equal(c2) {
		t.Errorf("returned cut aliases internal state")
	}
}

// TestCutSubsetLattice checks that Union/Intersect really are join/meet for
// the ⊆ lattice of cuts.
func TestCutSubsetLattice(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	ex := posettest.Random(r, 4, 20, 0.4)
	for k := 0; k < 100; k++ {
		a, b := randomCut(r, ex), randomCut(r, ex)
		u, i := a.Union(b), a.Intersect(b)
		if !a.Subset(u) || !b.Subset(u) || !i.Subset(a) || !i.Subset(b) {
			t.Fatalf("lattice bounds violated for %v,%v", a, b)
		}
		// Least upper bound: any cut containing both contains the union.
		c := randomCut(r, ex)
		if a.Subset(c) && b.Subset(c) && !u.Subset(c) {
			t.Fatalf("union not least upper bound")
		}
		if c.Subset(a) && c.Subset(b) && !c.Subset(i) {
			t.Fatalf("intersection not greatest lower bound")
		}
	}
}
