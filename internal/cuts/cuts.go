// Package cuts implements execution prefixes ("cuts", Definition 5 of
// Kshemkalyani IPPS 1998), their surfaces, the special past/future cuts ↓e
// and e↑ of an atomic event (Definitions 8–9), the four condensed cuts
// C1(X)–C4(X) of a nonatomic event (Definition 10 / Table 2), cut timestamps
// (Definition 15, Lemma 16), and the ≪ relation between cuts (Definition 7)
// together with its restricted linear-time violation test (Key Idea 2,
// Theorem 19).
//
// A cut is the union of one downward-closed subset of each local execution
// E_i, i.e. a per-node prefix. It therefore has an exact lossless
// representation as a frontier vector: Cut[i] is the position of the latest
// event of the cut on node i (0 = only ⊥_i, NumReal(i)+1 = up to and
// including ⊤_i). In this representation the frontier vector *is* the cut's
// timestamp in the position convention (Definition 15: T(C)[i] is the
// timestamp component of the latest event of C at node i), so Lemma 16's
// min/max composition rules act componentwise on Cut values, and the ≪ test
// is a componentwise comparison.
package cuts

import (
	"errors"
	"fmt"

	"causet/internal/poset"
	"causet/internal/vclock"
)

// Cut is an execution prefix represented by its frontier: Cut[i] is the
// position of the latest event included on node i. Every cut includes all
// dummy initial events E^⊥ (Definition 5), so components are ≥ 0.
type Cut []int

// Counter accumulates the number of integer comparisons spent in ≪ tests,
// for validating the complexity claims of Theorems 19 and 20. A nil *Counter
// is valid and counts nothing.
type Counter struct{ n int64 }

// Add records k comparisons.
func (c *Counter) Add(k int) {
	if c != nil {
		c.n += int64(k)
	}
}

// Count reports the comparisons recorded so far.
func (c *Counter) Count() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c != nil {
		c.n = 0
	}
}

// ErrNotDownwardClosed is returned by FromSet for sets that are not per-node
// prefixes once E^⊥ is added.
var ErrNotDownwardClosed = errors.New("cuts: event set is not downward-closed within some node")

// Bottom returns the cut E^⊥ containing exactly the dummy initial events.
func Bottom(ex *poset.Execution) Cut {
	return make(Cut, ex.NumProcs())
}

// Full returns the cut containing every event including all ⊤_i.
func Full(ex *poset.Execution) Cut {
	c := make(Cut, ex.NumProcs())
	for i := range c {
		c[i] = ex.TopPos(i)
	}
	return c
}

// FromEvents returns the smallest cut containing the given events (and E^⊥).
func FromEvents(ex *poset.Execution, events []poset.EventID) Cut {
	c := make(Cut, ex.NumProcs())
	for _, e := range events {
		if !ex.Valid(e) {
			panic(fmt.Sprintf("cuts: FromEvents with invalid event %v", e))
		}
		if e.Pos > c[e.Proc] {
			c[e.Proc] = e.Pos
		}
	}
	return c
}

// FromSet converts an explicit event set into a Cut, verifying that the set
// (plus E^⊥, which Definition 5 mandates) is downward-closed within every
// node. It is primarily used by tests that build cuts set-theoretically.
func FromSet(ex *poset.Execution, set map[poset.EventID]bool) (Cut, error) {
	c := make(Cut, ex.NumProcs())
	for e, in := range set {
		if !in {
			continue
		}
		if !ex.Valid(e) {
			return nil, fmt.Errorf("cuts: invalid event %v in set", e)
		}
		if e.Pos > c[e.Proc] {
			c[e.Proc] = e.Pos
		}
	}
	for i := 0; i < ex.NumProcs(); i++ {
		for pos := 1; pos <= c[i]; pos++ {
			if !set[poset.EventID{Proc: i, Pos: pos}] {
				return nil, fmt.Errorf("%w: node %d misses position %d below frontier %d",
					ErrNotDownwardClosed, i, pos, c[i])
			}
		}
	}
	return c, nil
}

// Clone returns a copy of c.
func (c Cut) Clone() Cut {
	d := make(Cut, len(c))
	copy(d, c)
	return d
}

// Equal reports componentwise equality.
func (c Cut) Equal(d Cut) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Contains reports whether event e belongs to the cut.
func (c Cut) Contains(e poset.EventID) bool {
	return e.Proc >= 0 && e.Proc < len(c) && e.Pos >= 0 && e.Pos <= c[e.Proc]
}

// IsBottom reports whether the cut is exactly E^⊥.
func (c Cut) IsBottom() bool {
	for _, f := range c {
		if f != 0 {
			return false
		}
	}
	return true
}

// Subset reports c ⊆ d.
func (c Cut) Subset(d Cut) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] > d[i] {
			return false
		}
	}
	return true
}

// Union returns c ∪ d (componentwise max; Lemma 16).
func (c Cut) Union(d Cut) Cut {
	u := make(Cut, len(c))
	for i := range c {
		u[i] = max(c[i], d[i])
	}
	return u
}

// Intersect returns c ∩ d (componentwise min; Lemma 16).
func (c Cut) Intersect(d Cut) Cut {
	u := make(Cut, len(c))
	for i := range c {
		u[i] = min(c[i], d[i])
	}
	return u
}

// Surface returns S(C), the latest event of the cut on each node
// (Definition 6), including ⊥_i for nodes whose prefix is empty. The events
// are ordered by node index.
func (c Cut) Surface() []poset.EventID {
	s := make([]poset.EventID, len(c))
	for i, f := range c {
		s[i] = poset.EventID{Proc: i, Pos: f}
	}
	return s
}

// SurfaceAt returns [S(C)]_i, the latest event of the cut at node i.
func (c Cut) SurfaceAt(i int) poset.EventID {
	return poset.EventID{Proc: i, Pos: c[i]}
}

// Events expands the cut into its explicit member set, including dummies.
// Intended for tests and small diagnostics, not hot paths.
func (c Cut) Events(ex *poset.Execution) []poset.EventID {
	var out []poset.EventID
	for i, f := range c {
		for pos := 0; pos <= f; pos++ {
			out = append(out, poset.EventID{Proc: i, Pos: pos})
		}
	}
	_ = ex
	return out
}

// NodeSet returns N_C = {i | C_i ⊄ {⊥_i, ⊤_i}}: the nodes where the cut
// contains at least one real event.
func (c Cut) NodeSet(ex *poset.Execution) []int {
	var out []int
	for i, f := range c {
		if f >= 1 && ex.NumReal(i) >= 1 {
			out = append(out, i)
		}
	}
	return out
}

// String renders the frontier, e.g. "cut[2 0 5]".
func (c Cut) String() string { return "cut" + fmt.Sprint([]int(c)) }

// Down returns ↓e, the causal past cut of a real event e (Definition 8):
// the maximal set of events that happen before or equal e. Its frontier at
// node i is T(e)[i]. Panics when e is not a real event of the execution;
// dummy events are not meaningful members of application-level intervals.
func Down(c *vclock.Clocks, e poset.EventID) Cut {
	if !c.Execution().IsReal(e) {
		panic(fmt.Sprintf("cuts: Down of non-real event %v", e))
	}
	t := c.T(e)
	d := make(Cut, len(t))
	copy(d, t)
	return d
}

// Up returns e↑, the complement of the causal future of a real event e
// (Definition 9): the prefix up to and including, on every node, the
// earliest event that happens after or equals e. Its frontier at node i is
// NumReal(i) + 1 − T^R(e)[i] (the ⊤_i fallback when no real event on i
// follows e; cf. the paper's |E_i| − T^R(x)[i] − 1, which differs only by
// the dummy-counting convention). Panics when e is not a real event.
func Up(c *vclock.Clocks, e poset.EventID) Cut {
	ex := c.Execution()
	if !ex.IsReal(e) {
		panic(fmt.Sprintf("cuts: Up of non-real event %v", e))
	}
	tr := c.TR(e)
	d := make(Cut, len(tr))
	for i := range d {
		d[i] = ex.NumReal(i) + 1 - tr[i]
	}
	return d
}

// IntersectDown returns C1(X) = ∩⇓X = ⋂_{x∈X} ↓x (Table 2): the maximal
// execution prefix every event of X knows about. X must be non-empty and
// consist of real events.
func IntersectDown(c *vclock.Clocks, x []poset.EventID) Cut {
	return fold(c, x, Down, minOp)
}

// UnionDown returns C2(X) = ∪⇓X = ⋃_{x∈X} ↓x (Table 2): the maximal prefix
// the events of X collectively know about.
func UnionDown(c *vclock.Clocks, x []poset.EventID) Cut {
	return fold(c, x, Down, maxOp)
}

// IntersectUp returns C3(X) = ∩⇑X = ⋂_{x∈X} x↑ (Table 2): the minimal prefix
// whose surface events are each preceded by some event of X.
func IntersectUp(c *vclock.Clocks, x []poset.EventID) Cut {
	return fold(c, x, Up, minOp)
}

// UnionUp returns C4(X) = ∪⇑X = ⋃_{x∈X} x↑ (Table 2): the minimal prefix
// whose surface events are each preceded by every event of X.
//
// Note: ∪⇑X is a componentwise max of the x↑ cuts; as a set it is the union,
// and Lemma 11 shows the result is again a cut.
func UnionUp(c *vclock.Clocks, x []poset.EventID) Cut {
	return fold(c, x, Up, maxOp)
}

type binOp func(a, b int) int

func minOp(a, b int) int { return min(a, b) }
func maxOp(a, b int) int { return max(a, b) }

func fold(c *vclock.Clocks, x []poset.EventID, base func(*vclock.Clocks, poset.EventID) Cut, op binOp) Cut {
	if len(x) == 0 {
		panic("cuts: fold over empty nonatomic event")
	}
	acc := base(c, x[0])
	for _, e := range x[1:] {
		next := base(c, e)
		for i := range acc {
			acc[i] = op(acc[i], next[i])
		}
	}
	return acc
}

// Less reports the ≪ relation of Definition 7 between cuts of the same
// execution, using the frontier characterization: ≪(C,C') iff C' ≠ E^⊥ and,
// for every node i where C contains more than ⊥_i, the frontier of C at i
// lies strictly below the frontier of C' at i. This is the general |P|-
// comparison evaluation; the restricted linear test of Key Idea 2 is
// NotLessOn.
func Less(c, d Cut) bool {
	if d.IsBottom() {
		return false
	}
	for i := range c {
		if c[i] >= 1 && c[i] >= d[i] {
			return false
		}
	}
	return true
}

// NotLess reports ⊀⊀(C,C'), the violation of ≪(C,C').
func NotLess(c, d Cut) bool { return !Less(c, d) }

// LessForm evaluates ≪(C,C') literally by one of the four equivalent forms
// of Definition 7 (form ∈ 1..4), operating on explicit event sets and the
// execution's causality oracle. Forms 2 and 4 define ⊀⊀ and are negated
// here so all four return ≪. This exists to validate Less and the paper's
// claim that the four forms coincide; it is O(|E|) and not meant for use on
// hot paths.
func LessForm(ex *poset.Execution, c, d Cut, form int) bool {
	surfC := c.Surface()
	surfD := d.Surface()
	inD := func(e poset.EventID) bool { return d.Contains(e) }
	inC := func(e poset.EventID) bool { return c.Contains(e) }
	inSurfD := func(e poset.EventID) bool { return d[e.Proc] == e.Pos }
	dIsBottom := d.IsBottom()

	switch form {
	case 1:
		// ∀z ∈ S(C)∖E^⊥: z ∉ S(C') ∧ z ∈ C', and C' ≠ E^⊥.
		if dIsBottom {
			return false
		}
		for _, z := range surfC {
			if ex.IsBottom(z) {
				continue
			}
			if inSurfD(z) || !inD(z) {
				return false
			}
		}
		return true
	case 2:
		// ⊀⊀ iff ∃z ∈ S(C)∖E^⊥: z ∈ S(C') ∨ z ∉ C', or C' = E^⊥; ≪ is the
		// literal negation.
		notLess := dIsBottom
		if !notLess {
			for _, z := range surfC {
				if ex.IsBottom(z) {
					continue
				}
				if inSurfD(z) || !inD(z) {
					notLess = true
					break
				}
			}
		}
		return !notLess
	case 3:
		// ∀z ∈ S(C')∖E^⊥: z ∉ C, and C' ≠ E^⊥ and N_C ⊆ N_C'.
		if dIsBottom {
			return false
		}
		for _, z := range surfD {
			if ex.IsBottom(z) {
				continue
			}
			if inC(z) {
				return false
			}
		}
		return subsetInts(c.NodeSet(ex), d.NodeSet(ex)) && noOrphanSurface(ex, c, d)
	case 4:
		// ⊀⊀ iff ∃z ∈ S(C')∖E^⊥: z ∈ C, or C' = E^⊥, or N_C ⊄ N_C'; ≪ is
		// the literal negation.
		notLess := dIsBottom || !subsetInts(c.NodeSet(ex), d.NodeSet(ex)) || !noOrphanSurface(ex, c, d)
		if !notLess {
			for _, z := range surfD {
				if ex.IsBottom(z) {
					continue
				}
				if inC(z) {
					notLess = true
					break
				}
			}
		}
		return !notLess
	default:
		panic(fmt.Sprintf("cuts: LessForm with form=%d", form))
	}
}

// noOrphanSurface covers the dummy-⊤ corner that the paper's N_C ⊆ N_C'
// side condition covers implicitly under its "events of interest contain no
// dummy events" assumption: a surface event of C that is some ⊤_i (or a real
// surface event on a node where C' has nothing real) can never satisfy
// Definition 7.1's "z ∈ C' ∧ z ∉ S(C')". Forms 3/4 phrased purely over
// S(C') would otherwise miss it when node i has no real events at all, since
// such a node never enters either node set.
func noOrphanSurface(ex *poset.Execution, c, d Cut) bool {
	for i := range c {
		if ex.NumReal(i) == 0 && c[i] >= 1 && c[i] >= d[i] {
			return false
		}
	}
	return true
}

func subsetInts(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	for _, v := range a {
		if !set[v] {
			return false
		}
	}
	return true
}

// NotLessOn is the restricted violation test of Key Idea 2 / Theorem 19:
// it detects ⊀⊀(C, C') by comparing frontiers only at the given nodes,
// spending exactly one integer comparison per node inspected (early exit on
// the first violation). For the structured cuts of the paper — C = ↓Y
// (one of ∩⇓Y, ∪⇓Y, or ↓y) and C' = X↑ (one of ∩⇑X, ∪⇑X, or x↑) — checking
// nodes = N_X or nodes = N_Y is sound and complete, so the caller passes
// whichever is smaller to achieve min(|N_X|, |N_Y|) comparisons.
//
// Each comparison performed is recorded on ctr (which may be nil).
func NotLessOn(c, d Cut, nodes []int, ctr *Counter) bool {
	for _, i := range nodes {
		ctr.Add(1)
		if d[i] <= c[i] {
			return true
		}
	}
	return false
}
