package cuts

import (
	"causet/internal/poset"
	"causet/internal/vclock"
)

// This file adds the classical notion of *consistent* cuts (global states;
// Mattern 1989) on top of the paper's per-node-prefix cuts. The paper's
// Definition 5 requires downward closure only within each process; a cut is
// consistent when it is additionally closed under message causality — for
// every receive it contains, it contains the matching send (equivalently,
// it is downward closed in (E, ≺)).
//
// The paper observes, after Definition 10, that ∩⇓X and ∪⇓X are
// downward-closed subsets of (E, ≺) — i.e. consistent — while ∩⇑X and ∪⇑X
// are not in general. Consistent, MostRecentConsistent and
// LeastConsistentExtension make that observation executable and give
// applications the standard global-state tooling (e.g. a checkpoint line
// through a nonatomic event's past).

// Consistent reports whether the cut is downward closed in (E, ≺): every
// message received inside the cut was also sent inside it.
func Consistent(ex *poset.Execution, c Cut) bool {
	for _, m := range ex.Messages() {
		if c.Contains(m.To) && !c.Contains(m.From) {
			return false
		}
	}
	return true
}

// MostRecentConsistent returns the largest consistent cut contained in c:
// the standard "rollback" line for an inconsistent global state. It is
// computed by repeatedly truncating nodes whose frontier event knows more
// of some other node than the cut includes, using forward timestamps
// (O(|P|²) iterations worst case, each O(|P|)).
func MostRecentConsistent(clk *vclock.Clocks, c Cut) Cut {
	ex := clk.Execution()
	out := c.Clone()
	for changed := true; changed; {
		changed = false
		for i := range out {
			// Walk the real frontier of node i down until its causal past
			// fits inside the current cut. A frontier at ⊤_i starts from the
			// node's last real event (⊤ carries no message obligations, but
			// truncating below it must drop it: the frontier representation
			// cannot hold ⊤ without all real events).
			pos := min(out[i], ex.NumReal(i))
			start := pos
			for pos >= 1 {
				t := clk.T(poset.EventID{Proc: i, Pos: pos})
				fits := true
				for j := range out {
					if t[j] > min(out[j], ex.NumReal(j)) {
						fits = false
						break
					}
				}
				if fits {
					break
				}
				pos--
				changed = true
			}
			if pos < start {
				out[i] = pos
			}
		}
	}
	return out
}

// LeastConsistentExtension returns the smallest consistent cut containing
// c: the frontier is pushed up to include the causal past of every event
// already inside.
func LeastConsistentExtension(clk *vclock.Clocks, c Cut) Cut {
	ex := clk.Execution()
	out := c.Clone()
	for i := range out {
		pos := min(out[i], ex.NumReal(i))
		if pos < 1 {
			continue
		}
		t := clk.T(poset.EventID{Proc: i, Pos: pos})
		for j := range out {
			if t[j] > out[j] {
				out[j] = t[j]
			}
		}
	}
	// One pass suffices: T is transitive (T(e) already includes the pasts
	// of everything in ↓e), so the extended frontier is closed.
	return out
}
