package cuts

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"causet/internal/poset"
)

// quickExec is a fixed execution shape for the algebraic quick checks: the
// laws under test depend only on frontier arithmetic, so one shape with
// mixed per-process sizes (including an empty process) suffices.
var quickExec = func() *poset.Execution {
	b := poset.NewBuilder(4)
	b.AppendN(0, 5)
	b.AppendN(1, 1)
	b.AppendN(2, 7)
	// process 3 stays empty: TopPos = 1
	return b.MustBuild()
}()

// genCut decodes four bytes into a valid cut of quickExec.
func genCut(raw [4]uint8) Cut {
	c := make(Cut, 4)
	for i := range c {
		c[i] = int(raw[i]) % (quickExec.TopPos(i) + 1)
	}
	return c
}

// cutGen adapts genCut to testing/quick's Generator-less API via Values.
func cutGen(args []reflect.Value, r *rand.Rand) {
	for i := range args {
		var raw [4]uint8
		for k := range raw {
			raw[k] = uint8(r.Intn(256))
		}
		args[i] = reflect.ValueOf(genCut(raw))
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 3000, Values: cutGen}
}

// TestQuickLatticeLaws checks the semilattice laws of Union/Intersect on
// random cuts: commutativity, associativity, idempotence, and absorption.
func TestQuickLatticeLaws(t *testing.T) {
	comm := func(a, b Cut) bool {
		return a.Union(b).Equal(b.Union(a)) && a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(comm, quickCfg()); err != nil {
		t.Error("commutativity:", err)
	}
	assoc := func(a, b, c Cut) bool {
		return a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) &&
			a.Intersect(b.Intersect(c)).Equal(a.Intersect(b).Intersect(c))
	}
	if err := quick.Check(assoc, quickCfg()); err != nil {
		t.Error("associativity:", err)
	}
	idem := func(a Cut) bool {
		return a.Union(a).Equal(a) && a.Intersect(a).Equal(a)
	}
	if err := quick.Check(idem, quickCfg()); err != nil {
		t.Error("idempotence:", err)
	}
	absorb := func(a, b Cut) bool {
		return a.Union(a.Intersect(b)).Equal(a) && a.Intersect(a.Union(b)).Equal(a)
	}
	if err := quick.Check(absorb, quickCfg()); err != nil {
		t.Error("absorption:", err)
	}
}

// TestQuickSubsetConsistency: c ⊆ d iff c ∪ d = d iff c ∩ d = c.
func TestQuickSubsetConsistency(t *testing.T) {
	f := func(c, d Cut) bool {
		sub := c.Subset(d)
		return sub == c.Union(d).Equal(d) && sub == c.Intersect(d).Equal(c)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickLessProperties: ≪ implies proper subset; ≪ is preserved by
// enlarging the right side and shrinking the left side (monotonicity on the
// structured side used by the evaluation conditions).
func TestQuickLessProperties(t *testing.T) {
	implySubset := func(c, d Cut) bool {
		if !Less(c, d) {
			return true
		}
		return c.Subset(d) && !c.Equal(d)
	}
	if err := quick.Check(implySubset, quickCfg()); err != nil {
		t.Error("≪ ⇒ ⊊:", err)
	}
	monotone := func(c, d, e Cut) bool {
		if !Less(c, d) {
			return true
		}
		// Enlarging d preserves ≪; shrinking c preserves it too.
		if !Less(c, d.Union(e)) {
			return false
		}
		return Less(c.Intersect(d).Intersect(c), d) // c∩d∩c ⊆ c
	}
	if err := quick.Check(monotone, quickCfg()); err != nil {
		t.Error("monotonicity:", err)
	}
}

// TestQuickSurfaceContainsFrontier: every cut contains exactly its surface
// events as per-node maxima.
func TestQuickSurfaceContainsFrontier(t *testing.T) {
	f := func(c Cut) bool {
		for i, e := range c.Surface() {
			if e.Proc != i || e.Pos != c[i] {
				return false
			}
			if !c.Contains(e) {
				return false
			}
			if c.Contains(poset.EventID{Proc: i, Pos: c[i] + 1}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickFromEventsIsLeastUpperBound: FromEvents returns the smallest cut
// containing its inputs.
func TestQuickFromEventsIsLeastUpperBound(t *testing.T) {
	f := func(raw [3][2]uint8, other Cut) bool {
		events := make([]poset.EventID, 0, 3)
		for _, r := range raw {
			p := int(r[0]) % 4
			events = append(events, poset.EventID{Proc: p, Pos: int(r[1]) % (quickExec.TopPos(p) + 1)})
		}
		c := FromEvents(quickExec, events)
		for _, e := range events {
			if !c.Contains(e) {
				return false
			}
		}
		// Any cut containing all the events contains c.
		containsAll := true
		for _, e := range events {
			if !other.Contains(e) {
				containsAll = false
				break
			}
		}
		if containsAll && !c.Subset(other) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 3000, Values: func(args []reflect.Value, r *rand.Rand) {
		var raw [3][2]uint8
		for i := range raw {
			raw[i][0] = uint8(r.Intn(256))
			raw[i][1] = uint8(r.Intn(256))
		}
		args[0] = reflect.ValueOf(raw)
		var craw [4]uint8
		for k := range craw {
			craw[k] = uint8(r.Intn(256))
		}
		args[1] = reflect.ValueOf(genCut(craw))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
