package cuts

import (
	"math/rand"
	"testing"

	"causet/internal/poset"
	"causet/internal/poset/posettest"
	"causet/internal/vclock"
)

// TestPastCutsAreConsistent pins the paper's observation after Definition
// 10: ∩⇓X, ∪⇓X (and every ↓e) are downward closed in (E, ≺) — consistent —
// for random executions and intervals.
func TestPastCutsAreConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for trial := 0; trial < 40; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 5+r.Intn(20), 0.5)
		clk := vclock.New(ex)
		x := posettest.RandomInterval(r, ex, 5)
		if x == nil {
			continue
		}
		if !Consistent(ex, IntersectDown(clk, x)) {
			t.Fatalf("trial %d: ∩⇓X inconsistent", trial)
		}
		if !Consistent(ex, UnionDown(clk, x)) {
			t.Fatalf("trial %d: ∪⇓X inconsistent", trial)
		}
		for _, e := range x {
			if !Consistent(ex, Down(clk, e)) {
				t.Fatalf("trial %d: ↓%v inconsistent", trial, e)
			}
		}
	}
}

// TestFutureCutsCanBeInconsistent exhibits the other half of the paper's
// observation: ∩⇑X and ∪⇑X are not downward closed in (E, ≺) in general.
// Fixture: x on p0; p1 sends to p2 before p2's first event that follows x,
// so x↑ contains p2's receive without the matching p1 send... constructed
// concretely below with p2 receiving from p1 after also hearing from p0.
func TestFutureCutsCanBeInconsistent(t *testing.T) {
	b := poset.NewBuilder(3)
	x := b.Append(0)
	// p1 does early independent work and sends to p2.
	p1send := b.Append(1)
	// p2 first hears from p0 (so its first ⪰x event is the receive from
	// p0), then receives p1's old message.
	recvFromP0 := b.Append(2)
	if err := b.Message(x, recvFromP0); err != nil {
		t.Fatal(err)
	}
	recvFromP1 := b.Append(2)
	if err := b.Message(p1send, recvFromP1); err != nil {
		t.Fatal(err)
	}
	// p1's first event ⪰ x comes later, via a message from p2.
	p2send := b.Append(2)
	p1recv := b.Append(1)
	if err := b.Message(p2send, p1recv); err != nil {
		t.Fatal(err)
	}
	ex := b.MustBuild()
	clk := vclock.New(ex)

	up := Up(clk, x) // x↑
	// x↑ includes p1's events up to p1recv (pos 2): in particular p1recv,
	// whose incoming message from p2send (pos 3 on p2) is NOT in the cut
	// (x↑ on p2 stops at recvFromP0, pos 1).
	if up[1] != 2 || up[2] != 1 {
		t.Fatalf("fixture drifted: x↑ = %v", up)
	}
	if Consistent(ex, up) {
		t.Fatalf("x↑ = %v unexpectedly consistent", up)
	}
	x4 := UnionUp(clk, []poset.EventID{x})
	if Consistent(ex, x4) {
		t.Fatalf("∪⇑{x} = %v unexpectedly consistent", x4)
	}
}

func TestMostRecentConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	for trial := 0; trial < 60; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 5+r.Intn(20), 0.5)
		clk := vclock.New(ex)
		c := randomCut(r, ex)
		mrc := MostRecentConsistent(clk, c)
		if !Consistent(ex, mrc) {
			t.Fatalf("trial %d: MostRecentConsistent(%v) = %v is inconsistent", trial, c, mrc)
		}
		if !mrc.Subset(c) {
			t.Fatalf("trial %d: result %v not inside input %v", trial, mrc, c)
		}
		// Maximality: raising any node's frontier by one real event breaks
		// consistency or leaves the cut (weak check: result must equal input
		// whenever the input was already consistent).
		if Consistent(ex, c) && !mrc.Equal(c) {
			t.Fatalf("trial %d: consistent input %v shrunk to %v", trial, c, mrc)
		}
		for i := range mrc {
			if mrc[i] >= min(c[i], ex.NumReal(i)) {
				continue
			}
			bigger := mrc.Clone()
			bigger[i]++
			if Consistent(ex, bigger) {
				t.Fatalf("trial %d: %v not maximal at node %d (input %v)", trial, mrc, i, c)
			}
		}
	}
}

func TestLeastConsistentExtension(t *testing.T) {
	r := rand.New(rand.NewSource(227))
	for trial := 0; trial < 60; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 5+r.Intn(20), 0.5)
		clk := vclock.New(ex)
		c := randomCut(r, ex)
		lce := LeastConsistentExtension(clk, c)
		if !Consistent(ex, lce) {
			t.Fatalf("trial %d: extension %v of %v inconsistent", trial, c, lce)
		}
		if !c.Subset(lce) {
			t.Fatalf("trial %d: input %v not inside extension %v", trial, c, lce)
		}
		if Consistent(ex, c) && !lce.Equal(c) {
			t.Fatalf("trial %d: consistent input %v grew to %v", trial, c, lce)
		}
		// Minimality: every consistent cut containing c contains lce.
		for k := 0; k < 10; k++ {
			d := randomCut(r, ex)
			if c.Subset(d) && Consistent(ex, d) && !lce.Subset(d) {
				t.Fatalf("trial %d: %v consistent ⊇ %v but ⊉ extension %v", trial, d, c, lce)
			}
		}
	}
}

func TestConsistencyRoundTrip(t *testing.T) {
	// MostRecentConsistent ∘ LeastConsistentExtension and vice versa are
	// identity on consistent cuts.
	r := rand.New(rand.NewSource(229))
	ex := posettest.Random(r, 4, 24, 0.5)
	clk := vclock.New(ex)
	for k := 0; k < 50; k++ {
		c := MostRecentConsistent(clk, randomCut(r, ex))
		if got := LeastConsistentExtension(clk, c); !got.Equal(c) {
			t.Fatalf("extension moved a consistent cut: %v -> %v", c, got)
		}
		d := LeastConsistentExtension(clk, randomCut(r, ex))
		if got := MostRecentConsistent(clk, d); !got.Equal(d) {
			t.Fatalf("rollback moved a consistent cut: %v -> %v", d, got)
		}
	}
}
