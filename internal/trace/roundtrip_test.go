package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"causet/internal/poset"
	"causet/internal/rt"
	"causet/internal/sim"
)

// jsonBytes / gobBytes render a file through one codec.
func jsonBytes(t *testing.T, f *File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func gobBytes(t *testing.T, f *File) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrossCodecByteStable pins the property behind every determinism claim
// in this repo: encoding is a pure function of the trace content. For
// canonical files (fresh from New) the full codec cycles JSON→gob→JSON and
// gob→JSON→gob reproduce their input byte for byte, across every generator
// pattern and with timing attached.
func TestCrossCodecByteStable(t *testing.T) {
	for _, pat := range sim.Patterns() {
		res, err := sim.Generate(sim.Config{Pattern: pat, Procs: 4, Rounds: 3, Events: 24, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		named := map[string][]poset.EventID{}
		for _, ph := range res.Phases {
			named[ph.Name] = ph.Events
		}
		f := New(res.Exec, named)
		if pat == sim.Ring { // one variant with timing, to cover that field too
			f.SetTiming(rt.Synthesize(res.Exec, rt.SynthesizeConfig{Seed: 5}))
		}

		j1 := jsonBytes(t, f)
		viaGob, err := ReadGob(bytes.NewReader(gobBytes(t, f)))
		if err != nil {
			t.Fatalf("%v: gob decode: %v", pat, err)
		}
		j2 := jsonBytes(t, viaGob)
		if !bytes.Equal(j1, j2) {
			t.Errorf("%v: JSON differs after a gob round trip:\n%s\nvs\n%s", pat, j1, j2)
		}

		g1 := gobBytes(t, f)
		viaJSON, err := ReadJSON(bytes.NewReader(j1))
		if err != nil {
			t.Fatalf("%v: JSON decode: %v", pat, err)
		}
		g2 := gobBytes(t, viaJSON)
		if !bytes.Equal(g1, g2) {
			t.Errorf("%v: gob differs after a JSON round trip", pat)
		}
	}
}

// TestQuickCodecRoundTrip drives the same property over random generator
// seeds and shapes.
func TestQuickCodecRoundTrip(t *testing.T) {
	prop := func(seed int64, procs, rounds uint8) bool {
		cfg := sim.Config{
			Pattern: sim.Ring,
			Procs:   2 + int(procs%5),
			Rounds:  1 + int(rounds%4),
			Seed:    seed,
		}
		res, err := sim.Generate(cfg)
		if err != nil {
			return false
		}
		named := map[string][]poset.EventID{}
		for _, ph := range res.Phases {
			named[ph.Name] = ph.Events
		}
		f := New(res.Exec, named)
		j1 := jsonBytes(t, f)
		viaGob, err := ReadGob(bytes.NewReader(gobBytes(t, f)))
		if err != nil {
			return false
		}
		return bytes.Equal(j1, jsonBytes(t, viaGob))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestOversizedCountsRejected pins the MaxEvents guard FuzzTraceDecode
// originally flushed out: a corrupt file claiming a billion events used to
// stall Execution for minutes materializing vector clocks before failing. It
// must now be rejected up front, fast, with ErrTooLarge.
func TestOversizedCountsRejected(t *testing.T) {
	for _, counts := range [][]int{
		{1000000000},
		{MaxEvents + 1},
		{MaxEvents, 1},
	} {
		f := &File{Version: FormatVersion, Counts: counts}
		if _, err := f.Execution(); !errors.Is(err, ErrTooLarge) {
			t.Errorf("counts %v: err = %v, want ErrTooLarge", counts, err)
		}
	}
	// The bound is on the total claim, not the process count.
	ok := &File{Version: FormatVersion, Counts: []int{2, 3, 0}}
	if _, err := ok.Execution(); err != nil {
		t.Errorf("small trace rejected: %v", err)
	}
}

// FuzzTraceDecode throws arbitrary bytes at both decoders: they must reject
// with an error or accept — never panic — and whatever they accept must
// survive Execution() plus a re-encode/re-decode cycle without blowing up.
// Seeds include valid files from both codecs and targeted corruptions.
func FuzzTraceDecode(f *testing.F) {
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 2, Seed: 1})
	named := map[string][]poset.EventID{}
	for _, ph := range res.Phases {
		named[ph.Name] = ph.Events
	}
	file := New(res.Exec, named)
	var jbuf, gbuf bytes.Buffer
	if err := file.WriteJSON(&jbuf); err != nil {
		f.Fatal(err)
	}
	if err := file.WriteGob(&gbuf); err != nil {
		f.Fatal(err)
	}
	valid := [][]byte{jbuf.Bytes(), gbuf.Bytes()}
	for _, v := range valid {
		f.Add(v)
		truncated := v[:len(v)/2]
		f.Add(truncated)
		flipped := append([]byte(nil), v...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte(`{"version":1,"counts":[-1]}`))
	f.Add([]byte(`{"version":1,"counts":[1000000000]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"counts":[2,2],"messages":[{"from":{"proc":0,"index":2},"to":{"proc":1,"index":1}},{"from":{"proc":1,"index":2},"to":{"proc":0,"index":1}}]}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, decode := range []func() (*File, error){
			func() (*File, error) { return ReadJSON(bytes.NewReader(data)) },
			func() (*File, error) { return ReadGob(bytes.NewReader(data)) },
		} {
			tf, err := decode()
			if err != nil {
				continue // rejection is the expected outcome for garbage
			}
			// Keep throughput: a decoded claim can be legal (under MaxEvents)
			// yet cost ~1s in Build; don't let the fuzzer camp there.
			total := 0
			for _, c := range tf.Counts {
				if c > 0 {
					total += c
				}
			}
			if total > 1<<16 {
				continue
			}
			// Accepted: every downstream consumer must be panic-free.
			ex, err := tf.Execution()
			if err != nil {
				continue // structurally invalid content, caught with an error
			}
			tf.IntervalNames()
			if _, err := tf.AllIntervals(ex); err != nil {
				continue
			}
			if _, err := tf.Timing(ex); err != nil {
				continue
			}
			// Re-encode and re-decode: the codec must accept its own output.
			var buf bytes.Buffer
			if err := tf.WriteJSON(&buf); err != nil {
				t.Fatalf("re-encode of accepted input failed: %v", err)
			}
			if _, err := ReadJSON(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("re-decode of re-encoded input failed: %v", err)
			}
		}
	})
}
