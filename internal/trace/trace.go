// Package trace serializes recorded executions and their named nonatomic
// events to JSON (interoperable, human-inspectable) and gob (compact), and
// provides summary statistics. This is the persistence layer behind the
// cmd/tracegen, cmd/relcheck and cmd/syncmon tools: an application records a
// trace once and analyzes it offline, which is exactly the paper's Problem 4
// setting ("given a recorded trace of a distributed computation ...").
package trace

import (
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"causet/internal/interval"
	"causet/internal/poset"
	"causet/internal/rt"
	"causet/internal/vclock"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// EventRec is a serialized event reference.
type EventRec struct {
	Proc int `json:"proc"`
	Pos  int `json:"pos"`
}

// MessageRec is a serialized message edge.
type MessageRec struct {
	From EventRec `json:"from"`
	To   EventRec `json:"to"`
}

// IntervalRec is a serialized named nonatomic event.
type IntervalRec struct {
	Name   string     `json:"name"`
	Events []EventRec `json:"events"`
}

// File is the serializable form of an execution plus its named intervals
// and, optionally, per-event physical timestamps (see internal/rt).
type File struct {
	Version   int           `json:"version"`
	Counts    []int         `json:"counts"` // real events per process
	Messages  []MessageRec  `json:"messages"`
	Intervals []IntervalRec `json:"intervals,omitempty"`
	// TimesNS holds each process's event timestamps (nanoseconds) in
	// position order; empty when the trace is untimed.
	TimesNS [][]int64 `json:"times_ns,omitempty"`
}

// Errors returned by the decoding path.
var (
	ErrVersion     = errors.New("trace: unsupported format version")
	ErrNoInterval  = errors.New("trace: no such named interval")
	ErrDupInterval = errors.New("trace: duplicate interval name")
	ErrTooLarge    = errors.New("trace: event count exceeds MaxEvents")
)

// MaxEvents bounds the total event count a decoded file may claim. The poset
// builder materializes O(procs × events) vector-clock state, so a corrupt
// (or hostile) file whose counts claim billions of events would stall the
// loading tools for minutes before failing; ~16.7M events is far beyond any
// real trace. The bound applies only to decoded claims — it is checked
// against the Counts header, before any per-event allocation.
const MaxEvents = 1 << 24

// New converts an execution and an optional set of named nonatomic events to
// the serializable form. Interval names are emitted sorted for deterministic
// output.
func New(ex *poset.Execution, named map[string][]poset.EventID) *File {
	f := &File{Version: FormatVersion}
	for i := 0; i < ex.NumProcs(); i++ {
		f.Counts = append(f.Counts, ex.NumReal(i))
	}
	for _, m := range ex.Messages() {
		f.Messages = append(f.Messages, MessageRec{
			From: EventRec{Proc: m.From.Proc, Pos: m.From.Pos},
			To:   EventRec{Proc: m.To.Proc, Pos: m.To.Pos},
		})
	}
	names := make([]string, 0, len(named))
	for name := range named {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := IntervalRec{Name: name}
		for _, e := range named[name] {
			rec.Events = append(rec.Events, EventRec{Proc: e.Proc, Pos: e.Pos})
		}
		f.Intervals = append(f.Intervals, rec)
	}
	return f
}

// Execution rebuilds and validates the poset execution. All structural
// errors of the poset builder (dangling events, dummy endpoints, causal
// cycles) surface here.
func (f *File) Execution() (*poset.Execution, error) {
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrVersion, f.Version, FormatVersion)
	}
	total := 0
	for p, c := range f.Counts {
		if c < 0 {
			return nil, fmt.Errorf("trace: negative event count %d on process %d", c, p)
		}
		if c > MaxEvents || total+c > MaxEvents {
			return nil, fmt.Errorf("%w: %d processes claim more than %d events", ErrTooLarge, len(f.Counts), MaxEvents)
		}
		total += c
	}
	b := poset.NewBuilder(len(f.Counts))
	for p, c := range f.Counts {
		if c > 0 {
			b.AppendN(p, c)
		}
	}
	for _, m := range f.Messages {
		if err := b.Message(
			poset.EventID{Proc: m.From.Proc, Pos: m.From.Pos},
			poset.EventID{Proc: m.To.Proc, Pos: m.To.Pos},
		); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// IntervalNames returns the names of the stored intervals in file order.
func (f *File) IntervalNames() []string {
	out := make([]string, 0, len(f.Intervals))
	for _, rec := range f.Intervals {
		out = append(out, rec.Name)
	}
	return out
}

// Interval materializes the named interval against ex (which must be the
// execution rebuilt from this file).
func (f *File) Interval(ex *poset.Execution, name string) (*interval.Interval, error) {
	for _, rec := range f.Intervals {
		if rec.Name != name {
			continue
		}
		events := make([]poset.EventID, 0, len(rec.Events))
		for _, e := range rec.Events {
			events = append(events, poset.EventID{Proc: e.Proc, Pos: e.Pos})
		}
		return interval.New(ex, events)
	}
	return nil, fmt.Errorf("%w: %q", ErrNoInterval, name)
}

// AllIntervals materializes every stored interval, keyed by name.
func (f *File) AllIntervals(ex *poset.Execution) (map[string]*interval.Interval, error) {
	out := make(map[string]*interval.Interval, len(f.Intervals))
	for _, rec := range f.Intervals {
		if _, dup := out[rec.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDupInterval, rec.Name)
		}
		iv, err := f.Interval(ex, rec.Name)
		if err != nil {
			return nil, err
		}
		out[rec.Name] = iv
	}
	return out, nil
}

// WriteJSON writes the file as indented JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON decodes a JSON trace.
func ReadJSON(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	return &f, nil
}

// WriteGob writes the file in gob encoding.
func (f *File) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(f)
}

// ReadGob decodes a gob trace.
func ReadGob(r io.Reader) (*File, error) {
	var f File
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decoding gob: %w", err)
	}
	return &f, nil
}

// Save writes the trace to path, choosing the encoding by extension:
// ".json" for JSON, anything else for gob.
func (f *File) Save(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	if filepath.Ext(path) == ".json" {
		return f.WriteJSON(w)
	}
	return f.WriteGob(w)
}

// Load reads a trace from path, choosing the decoding by extension.
func Load(path string) (*File, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if filepath.Ext(path) == ".json" {
		return ReadJSON(r)
	}
	return ReadGob(r)
}

// SetTiming attaches per-event physical timestamps to the file.
func (f *File) SetTiming(tm *rt.Timing) {
	times := tm.Times()
	f.TimesNS = make([][]int64, len(times))
	for p, row := range times {
		f.TimesNS[p] = make([]int64, len(row))
		for i, d := range row {
			f.TimesNS[p][i] = int64(d)
		}
	}
}

// Timing materializes and validates the stored timestamps against ex (the
// execution rebuilt from this file). It errors when the trace is untimed.
func (f *File) Timing(ex *poset.Execution) (*rt.Timing, error) {
	if len(f.TimesNS) == 0 {
		return nil, errors.New("trace: no timestamps stored")
	}
	times := make([][]time.Duration, len(f.TimesNS))
	for p, row := range f.TimesNS {
		times[p] = make([]time.Duration, len(row))
		for i, ns := range row {
			times[p][i] = time.Duration(ns)
		}
	}
	return rt.New(ex, times)
}

// Stats summarizes a trace's causal structure beyond the raw counts.
type Stats struct {
	Procs    int
	Events   int
	Messages int
	// OrderedPairs is the number of ordered pairs (a ≺ b) among distinct
	// real events; Density is that count divided by n(n-1)/2 (the pair
	// count of a total order), i.e. 1.0 for a totally ordered execution
	// and → 0 for fully concurrent ones.
	OrderedPairs int
	Density      float64
}

// ComputeStats derives causal statistics using the timestamp structure
// (O(|E|²·?) pairwise over per-node latest vectors — intended for reporting,
// not hot paths).
func ComputeStats(ex *poset.Execution) Stats {
	st := Stats{
		Procs:    ex.NumProcs(),
		Events:   ex.NumEvents(),
		Messages: len(ex.Messages()),
	}
	clk := vclock.New(ex)
	events := ex.RealEvents()
	for _, a := range events {
		for _, b := range events {
			if a != b && clk.Precedes(a, b) {
				st.OrderedPairs++
			}
		}
	}
	if n := len(events); n > 1 {
		st.Density = float64(st.OrderedPairs) / (float64(n*(n-1)) / 2)
	}
	return st
}
