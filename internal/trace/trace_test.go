package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"causet/internal/poset"
	"causet/internal/rt"
	"causet/internal/sim"
)

func sample(t *testing.T) (*poset.Execution, map[string][]poset.EventID) {
	t.Helper()
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 2, Seed: 1})
	named := map[string][]poset.EventID{}
	for _, ph := range res.Phases {
		named[ph.Name] = ph.Events
	}
	return res.Exec, named
}

func assertRoundTrip(t *testing.T, ex *poset.Execution, named map[string][]poset.EventID, f2 *File) {
	t.Helper()
	ex2, err := f2.Execution()
	if err != nil {
		t.Fatalf("Execution: %v", err)
	}
	if ex2.NumProcs() != ex.NumProcs() || ex2.NumEvents() != ex.NumEvents() {
		t.Fatalf("shape mismatch after round trip")
	}
	m1, m2 := ex.Messages(), ex2.Messages()
	if len(m1) != len(m2) {
		t.Fatalf("message count mismatch")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("message %d mismatch: %v vs %v", i, m1[i], m2[i])
		}
	}
	ivs, err := f2.AllIntervals(ex2)
	if err != nil {
		t.Fatalf("AllIntervals: %v", err)
	}
	if len(ivs) != len(named) {
		t.Fatalf("interval count = %d, want %d", len(ivs), len(named))
	}
	for name, events := range named {
		iv, ok := ivs[name]
		if !ok {
			t.Fatalf("interval %q missing", name)
		}
		if iv.Size() != len(events) {
			t.Fatalf("interval %q has %d events, want %d", name, iv.Size(), len(events))
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ex, named := sample(t)
	f := New(ex, named)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ring-round-0") {
		t.Errorf("JSON output lacks interval names")
	}
	f2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertRoundTrip(t, ex, named, f2)
}

func TestGobRoundTrip(t *testing.T) {
	ex, named := sample(t)
	f := New(ex, named)
	var buf bytes.Buffer
	if err := f.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertRoundTrip(t, ex, named, f2)
}

func TestSaveLoadByExtension(t *testing.T) {
	ex, named := sample(t)
	f := New(ex, named)
	dir := t.TempDir()
	for _, name := range []string{"trace.json", "trace.gob"} {
		path := filepath.Join(dir, name)
		if err := f.Save(path); err != nil {
			t.Fatalf("Save(%s): %v", name, err)
		}
		f2, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		assertRoundTrip(t, ex, named, f2)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Errorf("Load of missing file succeeded")
	}
	if err := f.Save(filepath.Join(dir, "no-such-dir", "t.json")); err == nil {
		t.Errorf("Save into missing directory succeeded")
	}
}

func TestVersionCheck(t *testing.T) {
	f := &File{Version: 99, Counts: []int{1}}
	if _, err := f.Execution(); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestMalformedTraces(t *testing.T) {
	// Negative count.
	f := &File{Version: FormatVersion, Counts: []int{-1}}
	if _, err := f.Execution(); err == nil {
		t.Errorf("negative count accepted")
	}
	// Message to a dummy position.
	f = &File{
		Version:  FormatVersion,
		Counts:   []int{2, 2},
		Messages: []MessageRec{{From: EventRec{0, 0}, To: EventRec{1, 1}}},
	}
	if _, err := f.Execution(); err == nil {
		t.Errorf("dummy endpoint accepted")
	}
	// Causal cycle.
	f = &File{
		Version: FormatVersion,
		Counts:  []int{2, 2},
		Messages: []MessageRec{
			{From: EventRec{0, 2}, To: EventRec{1, 1}},
			{From: EventRec{1, 2}, To: EventRec{0, 1}},
		},
	}
	if _, err := f.Execution(); !errors.Is(err, poset.ErrCausalCycle) {
		t.Errorf("cycle: err = %v, want ErrCausalCycle", err)
	}
	// Garbage JSON.
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Errorf("garbage JSON accepted")
	}
	if _, err := ReadGob(strings.NewReader("garbage")); err == nil {
		t.Errorf("garbage gob accepted")
	}
}

func TestIntervalLookup(t *testing.T) {
	ex, named := sample(t)
	f := New(ex, named)
	ex2, err := f.Execution()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Interval(ex2, "nope"); !errors.Is(err, ErrNoInterval) {
		t.Errorf("err = %v, want ErrNoInterval", err)
	}
	iv, err := f.Interval(ex2, "ring-round-1")
	if err != nil {
		t.Fatal(err)
	}
	if iv.Size() != len(named["ring-round-1"]) {
		t.Errorf("wrong interval size")
	}
	names := f.IntervalNames()
	if len(names) != 2 || names[0] != "ring-round-0" {
		t.Errorf("IntervalNames = %v", names)
	}
	// Duplicate names must be rejected by AllIntervals.
	f.Intervals = append(f.Intervals, f.Intervals[0])
	if _, err := f.AllIntervals(ex2); !errors.Is(err, ErrDupInterval) {
		t.Errorf("err = %v, want ErrDupInterval", err)
	}
	// An interval with an out-of-range event must fail materialization.
	f.Intervals = []IntervalRec{{Name: "bad", Events: []EventRec{{Proc: 0, Pos: 99}}}}
	if _, err := f.AllIntervals(ex2); err == nil {
		t.Errorf("out-of-range interval accepted")
	}
}

func TestComputeStats(t *testing.T) {
	// Fully sequential: 2 procs, chain of messages → density 1.
	b := poset.NewBuilder(2)
	s1, r1, err := b.SendRecv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, r2, err := b.SendRecv(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = []poset.EventID{s1, r1, s2, r2}
	ex := b.MustBuild()
	st := ComputeStats(ex)
	if st.Events != 4 || st.Messages != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.OrderedPairs != 6 || st.Density != 1.0 {
		t.Errorf("chain density = %v (%d pairs), want 1.0 (6)", st.Density, st.OrderedPairs)
	}
	// Fully concurrent: no messages → density only from program order.
	b2 := poset.NewBuilder(2)
	b2.AppendN(0, 2)
	b2.AppendN(1, 2)
	st2 := ComputeStats(b2.MustBuild())
	if st2.OrderedPairs != 2 { // one ordered pair per process
		t.Errorf("concurrent OrderedPairs = %d, want 2", st2.OrderedPairs)
	}
	if st2.Density >= 0.5 {
		t.Errorf("concurrent density = %v, want < 0.5", st2.Density)
	}
	// Empty execution must not divide by zero.
	st3 := ComputeStats(poset.NewBuilder(2).MustBuild())
	if st3.Density != 0 || st3.Events != 0 {
		t.Errorf("empty stats = %+v", st3)
	}
}

func TestTimingRoundTrip(t *testing.T) {
	ex, named := sample(t)
	tm := rt.Synthesize(ex, rt.SynthesizeConfig{Seed: 5})
	f := New(ex, named)
	f.SetTiming(tm)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "times_ns") {
		t.Errorf("timed trace lacks times_ns field")
	}
	f2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := f2.Execution()
	if err != nil {
		t.Fatal(err)
	}
	tm2, err := f2.Timing(ex2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ex.RealEvents() {
		if tm.Of(e) != tm2.Of(e) {
			t.Fatalf("timestamp of %v changed across serialization", e)
		}
	}
	// Untimed traces report a clear error.
	f3 := New(ex, nil)
	if _, err := f3.Timing(ex); err == nil {
		t.Errorf("Timing on untimed trace succeeded")
	}
	// Corrupt times fail validation on load.
	f.TimesNS[0] = f.TimesNS[0][:1]
	if _, err := f.Timing(ex); err == nil {
		t.Errorf("malformed times accepted")
	}
}
