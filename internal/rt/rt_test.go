package rt

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"causet/internal/interval"
	"causet/internal/poset"
	"causet/internal/poset/posettest"
)

func msgFixture(t *testing.T) *poset.Execution {
	t.Helper()
	b := poset.NewBuilder(2)
	s := b.Append(0)
	r := b.Append(1)
	if err := b.Message(s, r); err != nil {
		t.Fatal(err)
	}
	b.Append(0)
	return b.MustBuild()
}

func TestNewValidation(t *testing.T) {
	ex := msgFixture(t)
	ms := time.Millisecond
	good := [][]time.Duration{{1 * ms, 5 * ms}, {3 * ms}}
	if _, err := New(ex, good); err != nil {
		t.Fatalf("valid times rejected: %v", err)
	}
	for _, tc := range []struct {
		times [][]time.Duration
		want  error
	}{
		{[][]time.Duration{{1 * ms, 5 * ms}}, ErrShape},                 // missing process
		{[][]time.Duration{{1 * ms}, {3 * ms}}, ErrShape},               // missing event
		{[][]time.Duration{{5 * ms, 1 * ms}, {7 * ms}}, ErrNotMonotone}, // decreasing
		{[][]time.Duration{{5 * ms, 6 * ms}, {3 * ms}}, ErrBeforeSend},  // recv at 3 < send at 5
		{[][]time.Duration{{1 * ms, 1 * ms}, {3 * ms}}, ErrNotMonotone}, // equal
	} {
		if _, err := New(ex, tc.times); !errors.Is(err, tc.want) {
			t.Errorf("times %v: err = %v, want %v", tc.times, err, tc.want)
		}
	}
}

// TestSynthesizeCausalMonotone: synthesized timestamps strictly increase
// along causality — t(a) < t(b) whenever a ≺ b — on random executions.
func TestSynthesizeCausalMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for trial := 0; trial < 25; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 5+r.Intn(20), 0.5)
		tm := Synthesize(ex, SynthesizeConfig{Seed: int64(trial)})
		if _, err := New(ex, tm.Times()); err != nil {
			t.Fatalf("trial %d: synthesized times invalid: %v", trial, err)
		}
		for _, a := range ex.RealEvents() {
			for _, b := range ex.RealEvents() {
				if ex.Precedes(a, b) && tm.Of(a) >= tm.Of(b) {
					t.Fatalf("trial %d: %v ≺ %v but t=%v ≥ %v", trial, a, b, tm.Of(a), tm.Of(b))
				}
			}
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	ex := msgFixture(t)
	a := Synthesize(ex, SynthesizeConfig{Seed: 9})
	b := Synthesize(ex, SynthesizeConfig{Seed: 9})
	c := Synthesize(ex, SynthesizeConfig{Seed: 10})
	for _, e := range ex.RealEvents() {
		if a.Of(e) != b.Of(e) {
			t.Fatalf("same seed diverged at %v", e)
		}
	}
	same := true
	for _, e := range ex.RealEvents() {
		if a.Of(e) != c.Of(e) {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical timings")
	}
}

func TestIntervalTimingQueries(t *testing.T) {
	ex := msgFixture(t)
	ms := time.Millisecond
	tm, err := New(ex, [][]time.Duration{{2 * ms, 30 * ms}, {10 * ms}})
	if err != nil {
		t.Fatal(err)
	}
	x := interval.MustNew(ex, []poset.EventID{{Proc: 0, Pos: 1}, {Proc: 1, Pos: 1}})
	y := interval.MustNew(ex, []poset.EventID{{Proc: 0, Pos: 2}})
	if got := tm.Start(x); got != 2*ms {
		t.Errorf("Start = %v", got)
	}
	if got := tm.End(x); got != 10*ms {
		t.Errorf("End = %v", got)
	}
	if got := tm.Span(x); got != 8*ms {
		t.Errorf("Span = %v", got)
	}
	if got := tm.Gap(x, y); got != 20*ms {
		t.Errorf("Gap = %v", got)
	}
	if got := tm.ResponseTime(x, y); got != 28*ms {
		t.Errorf("ResponseTime = %v", got)
	}
	if !tm.WithinDeadline(x, y, 28*ms) || tm.WithinDeadline(x, y, 27*ms) {
		t.Errorf("WithinDeadline boundary wrong")
	}
	// Overlapping-in-time intervals have a negative gap.
	if got := tm.Gap(y, x); got >= 0 {
		t.Errorf("reverse gap = %v, want negative", got)
	}
}

func TestOfPanicsOnDummy(t *testing.T) {
	ex := msgFixture(t)
	tm := Synthesize(ex, SynthesizeConfig{})
	defer func() {
		if recover() == nil {
			t.Fatalf("Of(⊥) did not panic")
		}
	}()
	tm.Of(ex.Bottom(0))
}

func TestSynthesizeRespectsBounds(t *testing.T) {
	ex := msgFixture(t)
	cfg := SynthesizeConfig{
		MinStep: 10 * time.Millisecond, MaxStep: 11 * time.Millisecond,
		MinLatency: 50 * time.Millisecond, MaxLatency: 51 * time.Millisecond,
		Seed: 1,
	}
	tm := Synthesize(ex, cfg)
	send := tm.Of(poset.EventID{Proc: 0, Pos: 1})
	recv := tm.Of(poset.EventID{Proc: 1, Pos: 1})
	if lat := recv - send; lat < cfg.MinLatency {
		t.Errorf("latency %v below minimum %v", lat, cfg.MinLatency)
	}
	if send < cfg.MinStep {
		t.Errorf("first event at %v, before its local step", send)
	}
	// Degenerate bounds (hi == lo) must not panic and must use lo.
	tm2 := Synthesize(ex, SynthesizeConfig{
		MinStep: time.Millisecond, MaxStep: time.Millisecond,
		MinLatency: time.Millisecond, MaxLatency: time.Millisecond,
	})
	if tm2.Of(poset.EventID{Proc: 0, Pos: 1}) != time.Millisecond {
		t.Errorf("degenerate step bound not honored")
	}
}

func TestExecutionAccessorAndErrorStrings(t *testing.T) {
	ex := msgFixture(t)
	tm := Synthesize(ex, SynthesizeConfig{})
	if tm.Execution() != ex {
		t.Errorf("Execution accessor wrong")
	}
}
