// Package rt adds the physical-time dimension of the paper's target domain
// ("distributed real-time applications"): wall-clock timestamps for every
// event, consistent with causality, plus the timing queries applications
// layer over the causal relations — spans, gaps, and response-time
// deadlines between nonatomic events.
//
// The causality relations say in which *order* nonatomic activities happen;
// the timing layer says *how long* they take and how far apart they are. A
// typical real-time contract combines both: R1(detect, engage) (causal
// order, checked by the evaluators) and
// ResponseTime(detect, engage) ≤ 50 ms (checked here).
//
// Timestamps are validated against the execution: they must strictly
// increase along each process and must not place a receive before its send.
// Those two local conditions imply t(a) < t(b) whenever a ≺ b (monotone
// along every causal path), which the tests verify globally.
package rt

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"causet/internal/interval"
	"causet/internal/poset"
)

// Validation errors returned by New.
var (
	ErrShape       = errors.New("rt: times shape does not match the execution")
	ErrNotMonotone = errors.New("rt: times must strictly increase along each process")
	ErrBeforeSend  = errors.New("rt: a receive is timestamped before its send")
)

// Timing assigns a physical timestamp to every real event of one execution.
// Construct with New (validating) or Synthesize (generating).
type Timing struct {
	ex *poset.Execution
	t  [][]time.Duration // t[p][pos-1] = timestamp of real event (p, pos)
}

// New validates per-event timestamps: times[p] holds process p's event
// times in position order.
func New(ex *poset.Execution, times [][]time.Duration) (*Timing, error) {
	if len(times) != ex.NumProcs() {
		return nil, fmt.Errorf("%w: %d processes timed, execution has %d", ErrShape, len(times), ex.NumProcs())
	}
	for p := range times {
		if len(times[p]) != ex.NumReal(p) {
			return nil, fmt.Errorf("%w: process %d has %d times for %d events", ErrShape, p, len(times[p]), ex.NumReal(p))
		}
		for i := 1; i < len(times[p]); i++ {
			if times[p][i] <= times[p][i-1] {
				return nil, fmt.Errorf("%w: p%d positions %d..%d", ErrNotMonotone, p, i, i+1)
			}
		}
	}
	tm := &Timing{ex: ex, t: times}
	for _, m := range ex.Messages() {
		if tm.Of(m.To) < tm.Of(m.From) {
			return nil, fmt.Errorf("%w: %v→%v", ErrBeforeSend, m.From, m.To)
		}
	}
	return tm, nil
}

// SynthesizeConfig parameterizes Synthesize.
type SynthesizeConfig struct {
	// MinStep/MaxStep bound the local delay between consecutive events of a
	// process (defaults 1ms/5ms).
	MinStep, MaxStep time.Duration
	// MinLatency/MaxLatency bound message network latency (defaults
	// 2ms/20ms).
	MinLatency, MaxLatency time.Duration
	Seed                   int64
}

func (c *SynthesizeConfig) defaults() {
	if c.MaxStep == 0 {
		c.MinStep, c.MaxStep = time.Millisecond, 5*time.Millisecond
	}
	if c.MaxLatency == 0 {
		c.MinLatency, c.MaxLatency = 2*time.Millisecond, 20*time.Millisecond
	}
}

// Synthesize generates causality-consistent timestamps for ex: each event
// occurs one random local step after its predecessor on the same process,
// and no earlier than its message's send time plus a random network
// latency. Deterministic for a given seed.
func Synthesize(ex *poset.Execution, cfg SynthesizeConfig) *Timing {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	draw := func(lo, hi time.Duration) time.Duration {
		if hi <= lo {
			return lo
		}
		return lo + time.Duration(r.Int63n(int64(hi-lo)))
	}
	tm := &Timing{ex: ex, t: make([][]time.Duration, ex.NumProcs())}
	for p := range tm.t {
		tm.t[p] = make([]time.Duration, ex.NumReal(p))
	}
	for _, e := range ex.LinearExtension() {
		t := time.Duration(0)
		if e.Pos > 1 {
			t = tm.t[e.Proc][e.Pos-2]
		}
		t += draw(cfg.MinStep, cfg.MaxStep)
		for _, from := range ex.MsgPredecessors(e) {
			if arrive := tm.Of(from) + draw(cfg.MinLatency, cfg.MaxLatency); arrive > t {
				t = arrive
			}
		}
		tm.t[e.Proc][e.Pos-1] = t
	}
	return tm
}

// Execution returns the timed execution.
func (tm *Timing) Execution() *poset.Execution { return tm.ex }

// Of returns the timestamp of a real event; it panics on dummies or
// unknown events (timing is only defined for application events).
func (tm *Timing) Of(e poset.EventID) time.Duration {
	if !tm.ex.IsReal(e) {
		panic(fmt.Sprintf("rt: Of(%v): not a real event", e))
	}
	return tm.t[e.Proc][e.Pos-1]
}

// Times returns the raw per-process timestamp table (shared; do not
// modify), for serialization.
func (tm *Timing) Times() [][]time.Duration { return tm.t }

// Start returns the earliest timestamp among the interval's events.
func (tm *Timing) Start(x *interval.Interval) time.Duration {
	first := true
	var lo time.Duration
	for _, e := range x.Events() {
		if t := tm.Of(e); first || t < lo {
			lo, first = t, false
		}
	}
	return lo
}

// End returns the latest timestamp among the interval's events.
func (tm *Timing) End(x *interval.Interval) time.Duration {
	var hi time.Duration
	for _, e := range x.Events() {
		if t := tm.Of(e); t > hi {
			hi = t
		}
	}
	return hi
}

// Span reports how long the nonatomic event lasted (End − Start).
func (tm *Timing) Span(x *interval.Interval) time.Duration {
	return tm.End(x) - tm.Start(x)
}

// Gap reports the idle time between x finishing and y beginning
// (Start(y) − End(x)); negative when they overlap in physical time.
func (tm *Timing) Gap(x, y *interval.Interval) time.Duration {
	return tm.Start(y) - tm.End(x)
}

// ResponseTime reports End(y) − Start(x): how long after x began did y
// fully complete — the quantity real-time deadlines bound.
func (tm *Timing) ResponseTime(x, y *interval.Interval) time.Duration {
	return tm.End(y) - tm.Start(x)
}

// WithinDeadline reports whether y completed within d of x beginning.
func (tm *Timing) WithinDeadline(x, y *interval.Interval, d time.Duration) bool {
	return tm.ResponseTime(x, y) <= d
}
