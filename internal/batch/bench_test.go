package batch

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"causet/internal/core"
	"causet/internal/interval"
	"causet/internal/obs"
	"causet/internal/sim"
)

// sweepWorkload builds the E5-style batch workload at |N_X| = |N_Y| = n: a
// ring execution whose rounds are the intervals, queried over every ordered
// round pair × all 8 relations.
func sweepWorkload(n int) (*sim.Result, []Query) {
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: n, Rounds: 8, Seed: 1})
	ivs := make([]*interval.Interval, 0, len(res.Phases))
	for _, ph := range res.Phases {
		ivs = append(ivs, interval.MustNew(res.Exec, ph.Events))
	}
	var pairs []Pair
	for i, x := range ivs {
		for j, y := range ivs {
			if i != j {
				pairs = append(pairs, Pair{X: x, Y: y})
			}
		}
	}
	return res, PairQueries(pairs, core.Relations())
}

// BenchmarkBatchParallelSweep compares serial (workers=1, inline loop)
// against parallel (workers=GOMAXPROCS) batch evaluation on the E5 sweep
// sizes. On a machine with GOMAXPROCS ≥ 4 the parallel rows show the
// near-linear speedup recorded in EXPERIMENTS.md E7; verdicts and aggregate
// comparison counts are identical by construction (asserted by
// TestParallelSweepAgreesWithSerial).
func BenchmarkBatchParallelSweep(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		res, qs := sweepWorkload(n)
		for _, cfg := range []struct {
			name    string
			workers int
		}{
			{"serial", 1},
			{"parallel", runtime.GOMAXPROCS(0)},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, cfg.name), func(b *testing.B) {
				a := core.NewAnalysis(res.Exec)
				eng := New(a, Options{Workers: cfg.workers})
				eng.EvalQueries(qs) // warm the cut cache out of the timed loop
				b.ResetTimer()
				var held int64
				for i := 0; i < b.N; i++ {
					held = eng.EvalQueries(qs).Stats.Held
				}
				b.StopTimer()
				if held == 0 {
					b.Fatal("ring rounds must satisfy some relations")
				}
				b.ReportMetric(float64(len(qs))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			})
		}
	}
}

// TestParallelSweepAgreesWithSerial runs the n=128 sweep workload both ways
// and requires bit-identical verdicts and aggregate comparison counts; on a
// machine with enough parallelism (and no race instrumentation) it also
// requires the ≥2× throughput the batch layer exists for.
func TestParallelSweepAgreesWithSerial(t *testing.T) {
	res, qs := sweepWorkload(128)
	serial := New(core.NewAnalysis(res.Exec), Options{Workers: 1})
	parallel := New(core.NewAnalysis(res.Exec), Options{Workers: runtime.GOMAXPROCS(0)})

	sr := serial.EvalQueries(qs)
	pr := parallel.EvalQueries(qs)
	if !reflect.DeepEqual(sr.Results, pr.Results) {
		t.Fatal("parallel verdicts differ from serial")
	}
	if sr.Stats != pr.Stats {
		t.Fatalf("aggregate stats differ: serial %+v, parallel %+v", sr.Stats, pr.Stats)
	}

	if runtime.GOMAXPROCS(0) < 4 || obs.RaceEnabled || testing.Short() {
		t.Skip("throughput check needs GOMAXPROCS ≥ 4 without race instrumentation")
	}
	measure := func(e *Engine) time.Duration {
		const reps = 20
		start := time.Now()
		for i := 0; i < reps; i++ {
			e.EvalQueries(qs)
		}
		return time.Since(start) / reps
	}
	measure(serial) // warm both paths before timing
	measure(parallel)
	st, pt := measure(serial), measure(parallel)
	if speedup := float64(st) / float64(pt); speedup < 2 {
		t.Errorf("parallel speedup %.2fx at n=128 with GOMAXPROCS=%d, want ≥ 2x (serial %v, parallel %v)",
			speedup, runtime.GOMAXPROCS(0), st, pt)
	}
}
