package batch

import (
	"math/rand"
	"testing"

	"causet/internal/obs"
)

// TestStatsMirrorRegistry: the registry-backed counters behind a metered
// engine agree exactly with the Stats views the engine still returns, across
// several batches and under the parallel pool.
func TestStatsMirrorRegistry(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	reg := obs.New()
	tr := obs.NewTracer()

	var wantQueries, wantHeld, wantErrors, wantCmp int64
	var batches int64
	for trial := 0; trial < 5; trial++ {
		a, _, qs := randomWorkload(r)
		a.Instrument(reg, tr)
		eng := New(a, Options{Workers: 4, Metrics: reg, Tracer: tr})
		res := eng.EvalQueries(qs)
		batches++
		wantQueries += res.Stats.Queries
		wantHeld += res.Stats.Held
		wantErrors += res.Stats.Errors
		wantCmp += res.Stats.Comparisons
	}

	for name, want := range map[string]int64{
		"batch.batches":     batches,
		"batch.queries":     wantQueries,
		"batch.held":        wantHeld,
		"batch.errors":      wantErrors,
		"batch.comparisons": wantCmp,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d (Stats view)", name, got, want)
		}
	}
	// The engine's comparison total must also land in the per-evaluator core
	// accounting (the batch engine evaluates through an instrumented
	// Analysis), and the tracer must have seen the batch and worker spans.
	var coreTotal int64
	for _, name := range reg.CounterNames() {
		switch name {
		case "core.naive.comparisons", "core.proxy.comparisons", "core.fast.comparisons":
			coreTotal += reg.Counter(name).Value()
		}
	}
	if coreTotal != wantCmp {
		t.Errorf("core.*.comparisons total = %d, want %d", coreTotal, wantCmp)
	}
	if tr.Len() == 0 {
		t.Error("tracer recorded no batch/worker spans")
	}
	if got := reg.Histogram("batch.batch_ns", obs.DurationBuckets).Count(); got != batches {
		t.Errorf("batch.batch_ns observations = %d, want %d", got, batches)
	}
}

// TestUninstrumentedEngineUnchanged: a nil registry leaves the engine's
// behavior and Stats identical to an instrumented run — instrumentation is
// observation only.
func TestUninstrumentedEngineUnchanged(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	a, _, qs := randomWorkload(r)
	plain := New(a, Options{Workers: 2})
	reg := obs.New()
	metered := New(a, Options{Workers: 2, Metrics: reg, Tracer: obs.NewTracer()})

	pres := plain.EvalQueries(qs)
	mres := metered.EvalQueries(qs)
	if pres.Stats != mres.Stats {
		t.Errorf("Stats diverge: plain %+v metered %+v", pres.Stats, mres.Stats)
	}
	for i := range qs {
		if pres.Results[i] != mres.Results[i] {
			t.Fatalf("query %d: verdicts diverge", i)
		}
	}
}
