// Package batch evaluates large sets of relation queries concurrently
// against one shared core.Analysis — the serving layer the ROADMAP's
// heavy-traffic goal needs on top of the paper's per-query linearity
// (Theorems 19–20). Three workload shapes are supported:
//
//   - EvalQueries: a flat list of (relation, X, Y) triples;
//   - Profiles: the full 32-relation set ℛ per interval pair;
//   - Matrix: the all-pairs strongest-relation matrix (Problem 4(ii)).
//
// Results are deterministic — results[i] always answers queries[i] and is
// bit-identical regardless of worker count or Analysis shard count — while
// the per-worker comparison/held/error counters are aggregated into a
// single Stats via atomics. The shared Analysis is safe because its cut
// cache is sharded with a build-once guarantee (core.NewAnalysisShards),
// so concurrent cold queries on one interval coalesce into one build.
package batch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"causet/internal/core"
	"causet/internal/hierarchy"
	"causet/internal/interval"
	"causet/internal/obs"
)

// chunk is the work-stealing granule: workers claim runs of this many items
// off an atomic cursor, large enough to amortize the claim, small enough to
// balance uneven per-query cost (early exits, cold cut builds).
const chunk = 32

// Options configures an Engine.
type Options struct {
	// Workers is the pool size; values < 1 (and 1 itself) select the
	// serial path — the engine then evaluates inline on the caller's
	// goroutine with zero scheduling overhead, which is the baseline the
	// parallel sweep (EXPERIMENTS.md E7) compares against.
	Workers int
	// NewEvaluator builds one evaluator per worker (they are cheap and
	// stateless, but giving each worker its own keeps the contract local).
	// nil selects core.NewFast.
	NewEvaluator func(*core.Analysis) core.Evaluator
	// Metrics, when non-nil, receives the engine's cumulative counters
	// (batch.batches, batch.queries, batch.held, batch.errors,
	// batch.comparisons) and latency/size histograms (batch.batch_ns,
	// batch.batch_queries). The per-batch Stats views returned by the
	// evaluation methods are unchanged; the registry aggregates across
	// batches and engines sharing it.
	Metrics *obs.Registry
	// Tracer, when non-nil, records one "batch" span per batch run plus one
	// span per worker goroutine (tid = worker index + 1), in Chrome
	// trace_event form.
	Tracer *obs.Tracer
	// LegacyScan forces the per-relation scan paths: 32 independent
	// EvalCount calls per Profiles pair and 8 per Matrix cell, instead of
	// the fused profile kernel (core.EvalProfile / core.EvalTable1). The
	// results are identical either way — this exists for differential
	// testing and for measuring the fusion win (EXPERIMENTS.md E10).
	//
	// The fused kernel implements the fast evaluation conditions, so it is
	// only substituted when the engine's evaluator is core.FastEvaluator;
	// engines built over the naive or proxy evaluator always use the
	// per-relation path with that evaluator's cost model.
	LegacyScan bool
}

// engineObs holds the engine's pre-interned instruments; all nil when no
// registry was configured (every record is then a no-op).
type engineObs struct {
	batches      *obs.Counter
	queries      *obs.Counter
	held         *obs.Counter
	errors       *obs.Counter
	comparisons  *obs.Counter
	batchNs      *obs.Histogram
	batchQueries *obs.Histogram
}

// Engine evaluates query batches against one execution's Analysis.
type Engine struct {
	a       *core.Analysis
	workers int
	newEval func(*core.Analysis) core.Evaluator
	fused   bool // Profiles/Matrix use the fused kernel (see Options.LegacyScan)
	met     engineObs
	tr      *obs.Tracer
}

// New returns an engine over a with the given options.
func New(a *core.Analysis, opts Options) *Engine {
	w := opts.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	ne := opts.NewEvaluator
	if ne == nil {
		ne = func(a *core.Analysis) core.Evaluator { return core.NewFast(a) }
	}
	e := &Engine{a: a, workers: w, newEval: ne, tr: opts.Tracer}
	if !opts.LegacyScan {
		_, isFast := ne(a).(*core.FastEvaluator)
		e.fused = isFast
	}
	if reg := opts.Metrics; reg != nil {
		e.met = engineObs{
			batches:      reg.Counter("batch.batches"),
			queries:      reg.Counter("batch.queries"),
			held:         reg.Counter("batch.held"),
			errors:       reg.Counter("batch.errors"),
			comparisons:  reg.Counter("batch.comparisons"),
			batchNs:      reg.Histogram("batch.batch_ns", obs.DurationBuckets),
			batchQueries: reg.Histogram("batch.batch_queries", obs.SizeBuckets),
		}
	}
	return e
}

// Workers reports the configured pool size.
func (e *Engine) Workers() int { return e.workers }

// Query is one relation query: does Rel(X, Y) hold?
type Query struct {
	Rel  core.Relation
	X, Y *interval.Interval
}

// Result answers one Query.
type Result struct {
	// Held is the verdict; false when Err is non-nil.
	Held bool
	// Comparisons is the number of integer comparisons spent (the paper's
	// cost model), 0 when Err is non-nil.
	Comparisons int64
	// Err is non-nil for rejected queries: *core.ErrOverlap for
	// overlapping pairs, or a foreign-execution error.
	Err error
}

// Stats aggregates the counters of one batch. It is the per-batch view of
// the engine's accounting; an engine configured with Options.Metrics also
// feeds the same tallies, cumulatively, into registry counters of the same
// names (batch.queries, batch.held, batch.errors, batch.comparisons).
type Stats struct {
	Queries     int64
	Held        int64
	Errors      int64
	Comparisons int64
}

// add merges a worker-local tally into the shared stats with atomics.
func (s *Stats) add(local Stats) {
	atomic.AddInt64(&s.Queries, local.Queries)
	atomic.AddInt64(&s.Held, local.Held)
	atomic.AddInt64(&s.Errors, local.Errors)
	atomic.AddInt64(&s.Comparisons, local.Comparisons)
}

// Results is one evaluated batch: Results[i] answers Queries[i].
type Results struct {
	Queries []Query
	Results []Result
	Stats   Stats
}

// evalOne answers q into r and tallies into the worker-local st.
func (e *Engine) evalOne(ev core.Evaluator, q Query, r *Result, st *Stats) {
	st.Queries++
	if q.X.Execution() != e.a.Execution() || q.Y.Execution() != e.a.Execution() {
		r.Err = fmt.Errorf("batch: interval from a different execution")
		st.Errors++
		return
	}
	if q.X.Overlaps(q.Y) {
		r.Err = &core.ErrOverlap{X: q.X, Y: q.Y}
		st.Errors++
		return
	}
	r.Held, r.Comparisons = ev.EvalCount(q.Rel, q.X, q.Y)
	st.Comparisons += r.Comparisons
	if r.Held {
		st.Held++
	}
}

// run distributes n items over the pool. Each worker claims chunks off an
// atomic cursor and calls do with a worker-local evaluator; with a pool
// size of 1 it degenerates to an inline loop on the caller's goroutine.
// When the engine is instrumented, the batch is wrapped in a tracer span
// (one sub-span per worker) and the totals are published to the registry
// after the barrier.
func (e *Engine) run(n int, do func(ev core.Evaluator, i int, st *Stats)) Stats {
	sp := e.tr.Begin("batch", "batch")
	var t0 time.Time
	if e.met.batchNs != nil {
		t0 = time.Now()
	}
	total := e.runPool(n, do)
	if e.met.batchNs != nil {
		e.met.batchNs.Observe(time.Since(t0).Nanoseconds())
	}
	sp.End()
	e.met.batches.Add(1)
	e.met.batchQueries.Observe(total.Queries)
	e.met.queries.Add(total.Queries)
	e.met.held.Add(total.Held)
	e.met.errors.Add(total.Errors)
	e.met.comparisons.Add(total.Comparisons)
	return total
}

func (e *Engine) runPool(n int, do func(ev core.Evaluator, i int, st *Stats)) Stats {
	var total Stats
	if e.workers == 1 || n <= chunk {
		ev := e.newEval(e.a)
		var local Stats
		for i := 0; i < n; i++ {
			do(ev, i, &local)
		}
		total.add(local)
		return total
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := e.tr.BeginTID("batch", "worker", int64(w)+1)
			defer wsp.End()
			ev := e.newEval(e.a)
			var local Stats
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= n {
					break
				}
				hi := min(lo+chunk, n)
				for i := lo; i < hi; i++ {
					do(ev, i, &local)
				}
			}
			total.add(local)
		}(w)
	}
	wg.Wait()
	return total
}

// EvalQueries answers every query in qs. Result order matches query order
// and each result is independent of the worker count.
func (e *Engine) EvalQueries(qs []Query) *Results {
	res := &Results{Queries: qs, Results: make([]Result, len(qs))}
	res.Stats = e.run(len(qs), func(ev core.Evaluator, i int, st *Stats) {
		e.evalOne(ev, qs[i], &res.Results[i], st)
	})
	return res
}

// PairQueries expands ordered interval pairs × relations into a flat query
// list, pairs-major in the given order — the canonical many-query workload.
func PairQueries(pairs []Pair, rels []core.Relation) []Query {
	qs := make([]Query, 0, len(pairs)*len(rels))
	for _, p := range pairs {
		for _, rel := range rels {
			qs = append(qs, Query{Rel: rel, X: p.X, Y: p.Y})
		}
	}
	return qs
}

// Pair is one ordered interval pair (X related to Y).
type Pair struct {
	X, Y *interval.Interval
}

// Profile reports which members of the 32-relation set ℛ hold for one pair,
// under the per-node proxies of Definition 2.
type Profile struct {
	Pair Pair
	// Holding lists the relations that hold, in core.AllRel32 order.
	Holding []core.Rel32
	// Bits has bit i set iff core.AllRel32()[i] holds — a compact
	// fingerprint for deduplicating profiles at scale.
	Bits uint32
	// Err is non-nil when the pair was rejected (overlap or foreign
	// execution); Holding is empty then.
	Err error
}

// Profiles evaluates the full relation set ℛ for every pair. Profile order
// matches pair order.
//
// By default (fast evaluator, no Options.LegacyScan) each pair runs through
// the fused profile kernel: one shared pass per proxy pairing over cuts
// cached once per interval (core.EvalProfile), instead of 32 independent
// scans — same verdicts, a fraction of the comparisons, zero allocations
// per pair beyond the Holding slice.
func (e *Engine) Profiles(pairs []Pair) ([]Profile, Stats) {
	out := make([]Profile, len(pairs))
	all := core.AllRel32()
	stats := e.run(len(pairs), func(ev core.Evaluator, i int, st *Stats) {
		p := pairs[i]
		out[i].Pair = p
		st.Queries++
		if p.X.Execution() != e.a.Execution() || p.Y.Execution() != e.a.Execution() {
			out[i].Err = fmt.Errorf("batch: interval from a different execution")
			st.Errors++
			return
		}
		if p.X.Overlaps(p.Y) {
			out[i].Err = &core.ErrOverlap{X: p.X, Y: p.Y}
			st.Errors++
			return
		}
		if e.fused {
			mask, checks := e.a.EvalProfile(p.X, p.Y)
			out[i].Bits = mask
			out[i].Holding = core.MaskHolding(mask)
			st.Held += int64(len(out[i].Holding))
			st.Comparisons += checks
			return
		}
		for bit, r := range all {
			held, checks, err := e.a.EvalRel32Count(ev, r, p.X, p.Y, interval.DefPerNode)
			if err != nil {
				// Per-node proxies of valid intervals are never empty.
				panic(err)
			}
			st.Comparisons += checks
			if held {
				out[i].Holding = append(out[i].Holding, r)
				out[i].Bits |= 1 << uint(bit)
				st.Held++
			}
		}
	})
	return out, stats
}

// Matrix computes the strongest-relation pair matrix over the named
// intervals — the parallel counterpart of hierarchy.Summarize, cell-for-cell
// identical to it. names and ivs run in parallel; all intervals must belong
// to the engine's execution. By default each cell is decided by one fused
// Table 1 pass (core.EvalTable1) instead of six per-relation scans; see
// Options.LegacyScan.
func (e *Engine) Matrix(names []string, ivs []*interval.Interval) (*hierarchy.PairMatrix, Stats, error) {
	if len(names) != len(ivs) {
		return nil, Stats{}, fmt.Errorf("batch: %d names for %d intervals", len(names), len(ivs))
	}
	n := len(ivs)
	pm := &hierarchy.PairMatrix{
		Names: append([]string(nil), names...),
		Cells: make([][]hierarchy.Cell, n),
	}
	for i := range pm.Cells {
		pm.Cells[i] = make([]hierarchy.Cell, n)
	}
	errs := make([]error, n*n)
	canonical := hierarchy.Canonical()
	stats := e.run(n*n, func(ev core.Evaluator, k int, st *Stats) {
		i, j := k/n, k%n
		if i == j {
			return
		}
		x, y := ivs[i], ivs[j]
		st.Queries++
		if x.Execution() != e.a.Execution() || y.Execution() != e.a.Execution() {
			errs[k] = fmt.Errorf("batch: interval %q from a different execution", names[i])
			st.Errors++
			return
		}
		if x.Overlaps(y) {
			pm.Cells[i][j] = hierarchy.Cell{Overlap: true}
			return
		}
		var held []core.Relation
		if e.fused {
			verdicts, cmp := e.a.EvalTable1(x, y)
			st.Comparisons += cmp
			for _, rel := range canonical {
				if verdicts&(1<<uint(rel)) != 0 {
					held = append(held, rel)
					st.Held++
				}
			}
		} else {
			for _, rel := range canonical {
				ok, cmp := ev.EvalCount(rel, x, y)
				st.Comparisons += cmp
				if ok {
					held = append(held, rel)
					st.Held++
				}
			}
		}
		pm.Cells[i][j] = hierarchy.Cell{Strongest: hierarchy.Strongest(held)}
	})
	// First error in cell order, so failures are deterministic too.
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	return pm, stats, nil
}
