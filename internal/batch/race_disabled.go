//go:build !race

package batch

// raceEnabled reports whether the race detector is compiled in; the
// throughput assertions skip under it (instrumentation skews timing).
const raceEnabled = false
