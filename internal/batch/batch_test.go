package batch

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"causet/internal/core"
	"causet/internal/hierarchy"
	"causet/internal/interval"
	"causet/internal/poset"
	"causet/internal/poset/posettest"
)

// evaluators are the three differential peers; every batch verdict must be
// identical under all of them (the paper's Table 1 equivalence, now asserted
// under concurrency).
var evaluators = map[string]func(*core.Analysis) core.Evaluator{
	"naive": func(a *core.Analysis) core.Evaluator { return core.NewNaive(a) },
	"proxy": func(a *core.Analysis) core.Evaluator { return core.NewProxy(a) },
	"fast":  func(a *core.Analysis) core.Evaluator { return core.NewFast(a) },
}

// randomWorkload draws a random execution plus a set of pairwise-disjoint
// intervals and the full pair×relation query list over them.
func randomWorkload(r *rand.Rand) (*core.Analysis, []*interval.Interval, []Query) {
	for {
		ex := posettest.Random(r, 2+r.Intn(5), 12+r.Intn(30), 0.45)
		sets := posettest.DisjointN(r, ex, 4, 4)
		if sets == nil {
			continue
		}
		ivs := make([]*interval.Interval, 0, len(sets))
		for _, s := range sets {
			if len(s) == 0 {
				ivs = nil
				break
			}
			ivs = append(ivs, interval.MustNew(ex, s))
		}
		if ivs == nil {
			continue
		}
		var pairs []Pair
		for i, x := range ivs {
			for j, y := range ivs {
				if i != j {
					pairs = append(pairs, Pair{X: x, Y: y})
				}
			}
		}
		return core.NewAnalysis(ex), ivs, PairQueries(pairs, core.Relations())
	}
}

// TestDifferentialEvaluatorAgreement runs the three evaluators concurrently
// over the same randomized batches on one shared Analysis and asserts they
// return identical verdicts query-for-query (run with -race: this is also
// the engine's concurrency-safety certificate).
func TestDifferentialEvaluatorAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		a, _, qs := randomWorkload(r)
		got := make(map[string]*Results, len(evaluators))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for name, ne := range evaluators {
			wg.Add(1)
			go func(name string, ne func(*core.Analysis) core.Evaluator) {
				defer wg.Done()
				res := New(a, Options{Workers: 4, NewEvaluator: ne}).EvalQueries(qs)
				mu.Lock()
				got[name] = res
				mu.Unlock()
			}(name, ne)
		}
		wg.Wait()
		for i := range qs {
			nv := got["naive"].Results[i]
			pv := got["proxy"].Results[i]
			fv := got["fast"].Results[i]
			if nv.Err != nil || pv.Err != nil || fv.Err != nil {
				t.Fatalf("trial %d query %d: unexpected error %v/%v/%v", trial, i, nv.Err, pv.Err, fv.Err)
			}
			if nv.Held != pv.Held || pv.Held != fv.Held {
				t.Fatalf("trial %d: evaluators disagree on %v: naive=%v proxy=%v fast=%v",
					trial, qs[i], nv.Held, pv.Held, fv.Held)
			}
		}
		if nh, fh := got["naive"].Stats.Held, got["fast"].Stats.Held; nh != fh {
			t.Fatalf("trial %d: held tallies differ: naive=%d fast=%d", trial, nh, fh)
		}
	}
}

// TestWorkerAndShardIndependence is the determinism property: the full
// Results value — verdicts, per-query comparison counts, and aggregate
// stats — is identical for every worker count and Analysis shard count.
func TestWorkerAndShardIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	shardCounts := []int{1, 4, core.DefaultCacheShards}
	for trial := 0; trial < 15; trial++ {
		ex := posettest.Random(r, 2+r.Intn(5), 12+r.Intn(30), 0.45)
		sets := posettest.DisjointN(r, ex, 4, 4)
		if sets == nil || len(sets[0]) == 0 || len(sets[1]) == 0 || len(sets[2]) == 0 || len(sets[3]) == 0 {
			continue
		}
		ivs := make([]*interval.Interval, len(sets))
		for i, s := range sets {
			ivs[i] = interval.MustNew(ex, s)
		}
		var pairs []Pair
		for i, x := range ivs {
			for j, y := range ivs {
				if i != j {
					pairs = append(pairs, Pair{X: x, Y: y})
				}
			}
		}
		qs := PairQueries(pairs, core.Relations())
		var want *Results
		for _, shards := range shardCounts {
			a := core.NewAnalysisShards(ex, shards)
			for _, workers := range workerCounts {
				res := New(a, Options{Workers: workers}).EvalQueries(qs)
				if want == nil {
					want = res
					continue
				}
				if !reflect.DeepEqual(want.Results, res.Results) {
					t.Fatalf("trial %d: results differ at workers=%d shards=%d", trial, workers, shards)
				}
				if want.Stats != res.Stats {
					t.Fatalf("trial %d: stats differ at workers=%d shards=%d: %+v vs %+v",
						trial, workers, shards, want.Stats, res.Stats)
				}
			}
		}
	}
}

// reverseInterval maps an interval of ex onto the mirrored events of the
// reversed execution.
func reverseInterval(ex, rev *poset.Execution, iv *interval.Interval) *interval.Interval {
	events := make([]poset.EventID, 0, iv.Size())
	for _, e := range iv.Events() {
		events = append(events, poset.ReverseID(ex, e))
	}
	return interval.MustNew(rev, events)
}

// TestDualityMetamorphic uses time reversal as a metamorphic oracle for
// whole batches: rel(X, Y) on ex must equal hierarchy.Converse(rel)(Y', X')
// on poset.Reverse(ex), query-for-query, when both batches run in parallel.
func TestDualityMetamorphic(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for trial := 0; trial < 20; trial++ {
		a, _, qs := randomWorkload(r)
		ex := a.Execution()
		rev := poset.Reverse(ex)
		arev := core.NewAnalysis(rev)
		dual := make([]Query, len(qs))
		for i, q := range qs {
			dual[i] = Query{
				Rel: hierarchy.Converse(q.Rel),
				X:   reverseInterval(ex, rev, q.Y),
				Y:   reverseInterval(ex, rev, q.X),
			}
		}
		fwd := New(a, Options{Workers: 4}).EvalQueries(qs)
		bwd := New(arev, Options{Workers: 4}).EvalQueries(dual)
		for i := range qs {
			if fwd.Results[i].Err != nil || bwd.Results[i].Err != nil {
				t.Fatalf("trial %d query %d: unexpected error", trial, i)
			}
			if fwd.Results[i].Held != bwd.Results[i].Held {
				t.Fatalf("trial %d: %v=%v but dual %v(Y',X')=%v on reversed execution",
					trial, qs[i].Rel, fwd.Results[i].Held, dual[i].Rel, bwd.Results[i].Held)
			}
		}
	}
}

// TestEvalQueriesRejectsOverlapAndForeign covers the reject paths: an
// overlapping pair yields *core.ErrOverlap in place, a foreign interval an
// error, and both are tallied without disturbing neighboring results.
func TestEvalQueriesRejectsOverlapAndForeign(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a, ivs, _ := randomWorkload(r)
	ex := a.Execution()
	overlapping, err := ivs[0].Union(ivs[1])
	if err != nil {
		t.Fatal(err)
	}
	other := posettest.Random(r, 2, 6, 0.3)
	foreign := interval.MustNew(other, other.RealEvents()[:1])
	qs := []Query{
		{Rel: core.R4, X: ivs[0], Y: ivs[1]},
		{Rel: core.R4, X: ivs[0], Y: overlapping},
		{Rel: core.R4, X: foreign, Y: ivs[1]},
	}
	res := New(a, Options{Workers: 2}).EvalQueries(qs)
	if res.Results[0].Err != nil {
		t.Fatalf("disjoint query rejected: %v", res.Results[0].Err)
	}
	var ovl *core.ErrOverlap
	if !errors.As(res.Results[1].Err, &ovl) {
		t.Fatalf("overlap query: got %v, want *core.ErrOverlap", res.Results[1].Err)
	}
	if res.Results[2].Err == nil {
		t.Fatalf("foreign-execution query accepted")
	}
	if res.Stats.Errors != 2 || res.Stats.Queries != 3 {
		t.Fatalf("stats = %+v, want 2 errors over 3 queries", res.Stats)
	}
	_ = ex
}

// TestProfilesMatchesHoldingRel32 checks the parallel 32-relation profiles
// against the serial core.HoldingRel32, and the overlap reject path.
func TestProfilesMatchesHoldingRel32(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		a, ivs, _ := randomWorkload(r)
		pairs := []Pair{{X: ivs[0], Y: ivs[1]}, {X: ivs[2], Y: ivs[3]}, {X: ivs[1], Y: ivs[2]}}
		profiles, stats := New(a, Options{Workers: 4}).Profiles(pairs)
		fast := core.NewFast(a)
		for i, p := range pairs {
			want := a.HoldingRel32(fast, p.X, p.Y)
			if !reflect.DeepEqual(profiles[i].Holding, want) {
				t.Fatalf("trial %d pair %d: profile %v, want %v", trial, i, profiles[i].Holding, want)
			}
			var bits uint32
			for bit, r32 := range core.AllRel32() {
				for _, h := range want {
					if h == r32 {
						bits |= 1 << uint(bit)
					}
				}
			}
			if profiles[i].Bits != bits {
				t.Fatalf("trial %d pair %d: bits %032b, want %032b", trial, i, profiles[i].Bits, bits)
			}
		}
		if stats.Queries != int64(len(pairs)) {
			t.Fatalf("stats.Queries = %d, want %d", stats.Queries, len(pairs))
		}

		overlapping, err := ivs[0].Union(ivs[1])
		if err != nil {
			t.Fatal(err)
		}
		profiles, stats = New(a, Options{Workers: 2}).Profiles([]Pair{{X: ivs[0], Y: overlapping}})
		var ovl *core.ErrOverlap
		if !errors.As(profiles[0].Err, &ovl) || len(profiles[0].Holding) != 0 {
			t.Fatalf("overlapping pair: got %+v, want ErrOverlap and empty profile", profiles[0])
		}
		if stats.Errors != 1 {
			t.Fatalf("stats = %+v, want one error", stats)
		}
	}
}

// TestMatrixMatchesSummarize checks that the parallel all-pairs matrix
// renders byte-identically to the serial hierarchy.Summarize, including
// overlap cells, for every worker count.
func TestMatrixMatchesSummarize(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		a, ivs, _ := randomWorkload(r)
		// Append an overlapping interval so "ovl" cells are exercised.
		overlapping, err := ivs[0].Union(ivs[1])
		if err != nil {
			t.Fatal(err)
		}
		ivs = append(ivs, overlapping)
		names := []string{"a", "b", "c", "d", "ovl"}
		want, err := hierarchy.Summarize(a, core.NewFast(a), names, ivs)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			got, _, err := New(a, Options{Workers: workers}).Matrix(names, ivs)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Fatalf("trial %d workers=%d: matrix differs from Summarize:\n%s\nwant:\n%s",
					trial, workers, got.String(), want.String())
			}
		}
	}
	if _, _, err := New(core.NewAnalysis(posettest.Random(r, 2, 4, 0.3)), Options{}).Matrix([]string{"a"}, nil); err == nil {
		t.Fatalf("mismatched names/intervals accepted")
	}
}

// TestSharedAnalysisStress hammers one sharded Analysis from many engines
// at once and asserts the build-once guarantee: the number of cut builds
// equals the number of distinct intervals, not the number of queriers.
func TestSharedAnalysisStress(t *testing.T) {
	r := rand.New(rand.NewSource(331))
	ex := posettest.Random(r, 6, 120, 0.5)
	sets := posettest.DisjointN(r, ex, 12, 6)
	if sets == nil {
		t.Fatal("workload generation failed")
	}
	ivs := make([]*interval.Interval, len(sets))
	for i, s := range sets {
		ivs[i] = interval.MustNew(ex, s)
	}
	var pairs []Pair
	for i, x := range ivs {
		for j, y := range ivs {
			if i != j {
				pairs = append(pairs, Pair{X: x, Y: y})
			}
		}
	}
	qs := PairQueries(pairs, core.Relations())
	for _, shards := range []int{1, 4, core.DefaultCacheShards} {
		a := core.NewAnalysisShards(ex, shards)
		var wg sync.WaitGroup
		results := make([]*Results, 6)
		for g := range results {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = New(a, Options{Workers: 4}).EvalQueries(qs)
			}(g)
		}
		wg.Wait()
		// 32-relation proxies build extra per-proxy intervals, so only the
		// plain-relation path runs here: builds must equal |ivs| exactly.
		if got := a.CutBuilds(); got != int64(len(ivs)) {
			t.Fatalf("shards=%d: %d cut builds for %d distinct intervals", shards, got, len(ivs))
		}
		for g := 1; g < len(results); g++ {
			if !reflect.DeepEqual(results[0].Results, results[g].Results) {
				t.Fatalf("shards=%d: concurrent engines disagree", shards)
			}
		}
	}
}

// TestFusedMatchesLegacyScan is the engine-level differential for the fused
// profile kernel: Profiles and Matrix under the default fused path must be
// result-identical to the forced per-relation scans (Options.LegacyScan) and
// to scans under the naive evaluator, while spending strictly fewer
// comparisons than the legacy fast scan.
func TestFusedMatchesLegacyScan(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		a, ivs, _ := randomWorkload(r)
		var pairs []Pair
		for i, x := range ivs {
			for j, y := range ivs {
				if i != j {
					pairs = append(pairs, Pair{X: x, Y: y})
				}
			}
		}
		fused := New(a, Options{Workers: 4})
		legacy := New(a, Options{Workers: 4, LegacyScan: true})
		naive := New(a, Options{Workers: 4, LegacyScan: true, NewEvaluator: evaluators["naive"]})

		fp, fs := fused.Profiles(pairs)
		lp, ls := legacy.Profiles(pairs)
		np, _ := naive.Profiles(pairs)
		for i := range pairs {
			if fp[i].Bits != lp[i].Bits || fp[i].Bits != np[i].Bits {
				t.Fatalf("trial %d pair %d: masks differ: fused=%032b legacy=%032b naive=%032b",
					trial, i, fp[i].Bits, lp[i].Bits, np[i].Bits)
			}
			if !reflect.DeepEqual(fp[i].Holding, lp[i].Holding) {
				t.Fatalf("trial %d pair %d: holding differs: fused=%v legacy=%v",
					trial, i, fp[i].Holding, lp[i].Holding)
			}
		}
		if fs.Held != ls.Held || fs.Queries != ls.Queries {
			t.Fatalf("trial %d: stats differ: fused=%+v legacy=%+v", trial, fs, ls)
		}
		if fs.Comparisons >= ls.Comparisons {
			t.Fatalf("trial %d: fused profiles spent %d comparisons, legacy %d — no win",
				trial, fs.Comparisons, ls.Comparisons)
		}

		names := []string{"a", "b", "c", "d"}
		fm, fms, err := fused.Matrix(names, ivs)
		if err != nil {
			t.Fatal(err)
		}
		lm, lms, err := legacy.Matrix(names, ivs)
		if err != nil {
			t.Fatal(err)
		}
		if fm.String() != lm.String() {
			t.Fatalf("trial %d: fused matrix differs from legacy:\n%s\nwant:\n%s",
				trial, fm.String(), lm.String())
		}
		if fms.Held != lms.Held {
			t.Fatalf("trial %d: matrix held tallies differ: fused=%d legacy=%d",
				trial, fms.Held, lms.Held)
		}
		// The legacy matrix scans only the six canonical relations while the
		// fused kernel decides all eight, so tiny workloads can tie; the
		// fused path must simply never spend more.
		if fms.Comparisons > lms.Comparisons {
			t.Fatalf("trial %d: fused matrix spent %d comparisons, legacy %d — regression",
				trial, fms.Comparisons, lms.Comparisons)
		}
	}
}
