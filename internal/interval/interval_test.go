package interval

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"causet/internal/poset"
	"causet/internal/poset/posettest"
	"causet/internal/vclock"
)

func fixture(t *testing.T) *poset.Execution {
	t.Helper()
	b := poset.NewBuilder(3)
	a1 := b.Append(0)
	b1 := b.Append(1)
	if err := b.Message(a1, b1); err != nil {
		t.Fatal(err)
	}
	b2 := b.Append(1)
	b.Append(2)
	c2 := b.Append(2)
	if err := b.Message(b2, c2); err != nil {
		t.Fatal(err)
	}
	b.Append(0)
	return b.MustBuild()
}

func TestNewValidation(t *testing.T) {
	ex := fixture(t)
	if _, err := New(ex, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: err = %v, want ErrEmpty", err)
	}
	if _, err := New(ex, []poset.EventID{ex.Bottom(0)}); !errors.Is(err, ErrNotReal) {
		t.Errorf("bottom member: err = %v, want ErrNotReal", err)
	}
	if _, err := New(ex, []poset.EventID{ex.Top(2)}); !errors.Is(err, ErrNotReal) {
		t.Errorf("top member: err = %v, want ErrNotReal", err)
	}
	if _, err := New(ex, []poset.EventID{{Proc: 0, Pos: 99}}); !errors.Is(err, ErrNotReal) {
		t.Errorf("invalid member: err = %v, want ErrNotReal", err)
	}
}

func TestDedupAndOrder(t *testing.T) {
	ex := fixture(t)
	iv := MustNew(ex, []poset.EventID{
		{Proc: 2, Pos: 2}, {Proc: 0, Pos: 1}, {Proc: 2, Pos: 2}, {Proc: 0, Pos: 1}, {Proc: 1, Pos: 2},
	})
	want := []poset.EventID{{Proc: 0, Pos: 1}, {Proc: 1, Pos: 2}, {Proc: 2, Pos: 2}}
	got := iv.Events()
	if len(got) != len(want) {
		t.Fatalf("Events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Events[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if iv.Size() != 3 {
		t.Errorf("Size = %d", iv.Size())
	}
	if s := iv.String(); s != "{p0:1 p1:2 p2:2}" {
		t.Errorf("String = %q", s)
	}
}

func TestNodeSetAndExtrema(t *testing.T) {
	ex := fixture(t)
	iv := MustNew(ex, []poset.EventID{
		{Proc: 0, Pos: 1}, {Proc: 0, Pos: 2}, {Proc: 2, Pos: 1}, {Proc: 2, Pos: 2},
	})
	ns := iv.NodeSet()
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Fatalf("NodeSet = %v, want [0 2]", ns)
	}
	if iv.NodeCount() != 2 {
		t.Errorf("NodeCount = %d", iv.NodeCount())
	}
	if e, ok := iv.LeastOn(0); !ok || e != (poset.EventID{Proc: 0, Pos: 1}) {
		t.Errorf("LeastOn(0) = %v,%v", e, ok)
	}
	if e, ok := iv.GreatestOn(2); !ok || e != (poset.EventID{Proc: 2, Pos: 2}) {
		t.Errorf("GreatestOn(2) = %v,%v", e, ok)
	}
	if _, ok := iv.LeastOn(1); ok {
		t.Errorf("LeastOn(1) should report absence")
	}
	if _, ok := iv.GreatestOn(-1); ok {
		t.Errorf("GreatestOn(-1) should report absence")
	}
	least := iv.PerNodeLeast()
	if len(least) != 2 || least[0] != (poset.EventID{Proc: 0, Pos: 1}) || least[1] != (poset.EventID{Proc: 2, Pos: 1}) {
		t.Errorf("PerNodeLeast = %v", least)
	}
	greatest := iv.PerNodeGreatest()
	if len(greatest) != 2 || greatest[0] != (poset.EventID{Proc: 0, Pos: 2}) || greatest[1] != (poset.EventID{Proc: 2, Pos: 2}) {
		t.Errorf("PerNodeGreatest = %v", greatest)
	}
}

func TestContains(t *testing.T) {
	ex := fixture(t)
	iv := MustNew(ex, []poset.EventID{{Proc: 0, Pos: 2}, {Proc: 1, Pos: 1}})
	cases := map[poset.EventID]bool{
		{Proc: 0, Pos: 2}:  true,
		{Proc: 1, Pos: 1}:  true,
		{Proc: 0, Pos: 1}:  false,
		{Proc: 2, Pos: 1}:  false,
		{Proc: -1, Pos: 0}: false,
		{Proc: 9, Pos: 1}:  false,
	}
	for e, want := range cases {
		if got := iv.Contains(e); got != want {
			t.Errorf("Contains(%v) = %v, want %v", e, got, want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	ex := fixture(t)
	a := MustNew(ex, []poset.EventID{{Proc: 0, Pos: 1}, {Proc: 1, Pos: 1}})
	b := MustNew(ex, []poset.EventID{{Proc: 1, Pos: 1}, {Proc: 2, Pos: 2}})
	c := MustNew(ex, []poset.EventID{{Proc: 2, Pos: 1}})
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Errorf("a and b share p1:1 but Overlaps is false")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Errorf("a and c are disjoint but Overlaps is true")
	}
}

func TestProxyPerNodeDefinition2(t *testing.T) {
	// Under Definition 2 the proxies are per-node extrema; validate the
	// quantifier form: L_X = {e_i ∈ X | ∀e_i' ∈ X on node i, e_i ⪯ e_i'}.
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 4+r.Intn(16), 0.4)
		events := posettest.RandomInterval(r, ex, 8)
		if events == nil {
			continue
		}
		iv := MustNew(ex, events)
		for _, kind := range []ProxyKind{ProxyL, ProxyU} {
			proxy := iv.Proxy(kind, DefPerNode, nil)
			want := make(map[poset.EventID]bool)
			for _, e := range iv.Events() {
				ok := true
				for _, f := range iv.Events() {
					if f.Proc != e.Proc {
						continue
					}
					if kind == ProxyL && !ex.PrecedesEq(e, f) {
						ok = false
					}
					if kind == ProxyU && !ex.PrecedesEq(f, e) {
						ok = false
					}
				}
				if ok {
					want[e] = true
				}
			}
			if len(proxy) != len(want) {
				t.Fatalf("trial %d %v: proxy = %v, want %v", trial, kind, proxy, want)
			}
			for _, e := range proxy {
				if !want[e] {
					t.Fatalf("trial %d %v: unexpected proxy member %v", trial, kind, e)
				}
			}
		}
	}
}

func TestProxyGlobalDefinition3(t *testing.T) {
	// Under Definition 3 the proxies are global extrema; validate against
	// the literal quantifier over all members, using the causality oracle.
	r := rand.New(rand.NewSource(43))
	sawEmpty := false
	for trial := 0; trial < 40; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 4+r.Intn(16), 0.5)
		clk := vclock.New(ex)
		events := posettest.RandomInterval(r, ex, 6)
		if events == nil {
			continue
		}
		iv := MustNew(ex, events)
		for _, kind := range []ProxyKind{ProxyL, ProxyU} {
			proxy := iv.Proxy(kind, DefGlobal, clk)
			want := make(map[poset.EventID]bool)
			for _, e := range iv.Events() {
				ok := true
				for _, f := range iv.Events() {
					if kind == ProxyL && !ex.PrecedesEq(e, f) {
						ok = false
					}
					if kind == ProxyU && !ex.PrecedesEq(f, e) {
						ok = false
					}
				}
				if ok {
					want[e] = true
				}
			}
			if len(proxy) != len(want) {
				t.Fatalf("trial %d %v: global proxy = %v, want set %v of %v", trial, kind, proxy, want, iv)
			}
			for _, e := range proxy {
				if !want[e] {
					t.Fatalf("trial %d %v: unexpected member %v", trial, kind, e)
				}
			}
			if len(proxy) == 0 {
				sawEmpty = true
			}
		}
	}
	if !sawEmpty {
		t.Errorf("expected at least one empty Definition-3 proxy across trials (concurrent extrema)")
	}
}

func TestProxyIntervalRoundTrip(t *testing.T) {
	ex := fixture(t)
	clk := vclock.New(ex)
	iv := MustNew(ex, []poset.EventID{{Proc: 0, Pos: 1}, {Proc: 0, Pos: 2}, {Proc: 1, Pos: 2}})
	lx, err := iv.ProxyInterval(ProxyL, DefPerNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lx.Size() != 2 {
		t.Errorf("L_X size = %d, want 2", lx.Size())
	}
	// Per-node proxies are idempotent: L_{L_X} = L_X.
	lx2, err := lx.ProxyInterval(ProxyL, DefPerNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lx2.Size() != lx.Size() {
		t.Errorf("L is not idempotent: %v vs %v", lx2, lx)
	}
	for i, e := range lx2.Events() {
		if lx.Events()[i] != e {
			t.Errorf("L not idempotent at %d", i)
		}
	}
	// Global proxy of two concurrent events is empty and must error.
	conc := MustNew(ex, []poset.EventID{{Proc: 0, Pos: 2}, {Proc: 2, Pos: 1}})
	if _, err := conc.ProxyInterval(ProxyL, DefGlobal, clk); err == nil {
		t.Errorf("expected error for empty global proxy")
	} else if !strings.Contains(err.Error(), "empty") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestProxyPanics(t *testing.T) {
	ex := fixture(t)
	iv := MustNew(ex, []poset.EventID{{Proc: 0, Pos: 1}})
	for _, fn := range []func(){
		func() { iv.Proxy(ProxyL, DefGlobal, nil) },   // missing clocks
		func() { iv.Proxy(ProxyL, ProxyDef(9), nil) }, // unknown def
		func() { MustNew(ex, nil) },                   // invalid interval
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestKindAndDefStrings(t *testing.T) {
	if ProxyL.String() != "L" || ProxyU.String() != "U" {
		t.Errorf("ProxyKind strings wrong")
	}
	if ProxyKind(9).String() == "" || ProxyDef(9).String() == "" {
		t.Errorf("unknown enum strings must be non-empty")
	}
	if !strings.Contains(DefPerNode.String(), "2") || !strings.Contains(DefGlobal.String(), "3") {
		t.Errorf("ProxyDef strings should reference the definitions")
	}
}

// TestProxyNodeSubset checks |N_proxy| ≤ |N_X| and proxies are subsets of X,
// for random intervals (used by the paper's footnote 1).
func TestProxyNodeSubset(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		ex := posettest.Random(r, 2+r.Intn(4), 4+r.Intn(16), 0.4)
		clk := vclock.New(ex)
		events := posettest.RandomInterval(r, ex, 8)
		if events == nil {
			continue
		}
		iv := MustNew(ex, events)
		for _, def := range []ProxyDef{DefPerNode, DefGlobal} {
			for _, kind := range []ProxyKind{ProxyL, ProxyU} {
				proxy := iv.Proxy(kind, def, clk)
				for _, e := range proxy {
					if !iv.Contains(e) {
						t.Fatalf("proxy member %v not in interval", e)
					}
				}
				if len(proxy) > iv.NodeCount() {
					t.Fatalf("proxy has %d events but |N_X| = %d", len(proxy), iv.NodeCount())
				}
			}
		}
	}
}

func TestRestrictTo(t *testing.T) {
	ex := fixture(t)
	iv := MustNew(ex, []poset.EventID{
		{Proc: 0, Pos: 1}, {Proc: 1, Pos: 1}, {Proc: 1, Pos: 2}, {Proc: 2, Pos: 2},
	})
	sub, err := iv.RestrictTo([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 2 || sub.NodeCount() != 1 || sub.NodeSet()[0] != 1 {
		t.Errorf("RestrictTo(1) = %v", sub)
	}
	if _, err := iv.RestrictTo([]int{9}); err == nil {
		t.Errorf("empty restriction accepted")
	}
	multi, err := iv.RestrictTo([]int{0, 2})
	if err != nil || multi.Size() != 2 {
		t.Errorf("RestrictTo(0,2) = %v, %v", multi, err)
	}
}

func TestUnion(t *testing.T) {
	ex := fixture(t)
	a := MustNew(ex, []poset.EventID{{Proc: 0, Pos: 1}})
	b := MustNew(ex, []poset.EventID{{Proc: 0, Pos: 1}, {Proc: 2, Pos: 1}})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 2 { // duplicate p0:1 deduped
		t.Errorf("Union = %v", u)
	}
	otherB := poset.NewBuilder(3)
	otherB.Append(0)
	other := otherB.MustBuild()
	foreign := MustNew(other, []poset.EventID{{Proc: 0, Pos: 1}})
	if _, err := a.Union(foreign); err == nil {
		t.Errorf("cross-execution union accepted")
	}
}

func TestBetween(t *testing.T) {
	ex := fixture(t) // three processes with 2 real events each
	iv, err := Between(ex, []int{0, 1, 0}, []int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []poset.EventID{{Proc: 0, Pos: 1}, {Proc: 0, Pos: 2}, {Proc: 1, Pos: 2}, {Proc: 2, Pos: 1}}
	if iv.Size() != len(want) {
		t.Fatalf("Between = %v, want %v", iv.Events(), want)
	}
	for i, e := range iv.Events() {
		if e != want[i] {
			t.Fatalf("Between[%d] = %v, want %v", i, e, want[i])
		}
	}
	// Frontiers above NumReal clamp (⊤ contributes nothing); empty windows
	// and malformed frontiers error.
	if got, err := Between(ex, []int{0, 0, 0}, []int{9, 9, 9}); err != nil || got.Size() != 6 {
		t.Errorf("clamped window = %v, %v", got, err)
	}
	if _, err := Between(ex, []int{2, 2, 2}, []int{2, 2, 2}); err == nil {
		t.Errorf("empty window accepted")
	}
	if _, err := Between(ex, []int{0}, []int{1, 1, 1}); err == nil {
		t.Errorf("malformed frontier accepted")
	}
}

func TestExecutionAccessor(t *testing.T) {
	ex := fixture(t)
	iv := MustNew(ex, []poset.EventID{{Proc: 0, Pos: 1}})
	if iv.Execution() != ex {
		t.Errorf("Execution accessor does not return the source execution")
	}
}
