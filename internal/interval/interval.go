// Package interval implements nonatomic poset events ("intervals"): the
// higher-level application events of Kshemkalyani (IPPS 1998). An interval is
// a non-empty set of real atomic events of one execution, typically spanning
// several nodes. The package provides the node set N_X (Definition 1),
// per-node extrema, and the two proxy constructions L_X / U_X of
// Definitions 2 and 3 that represent an interval's beginning and end.
package interval

import (
	"errors"
	"fmt"
	"sort"

	"causet/internal/poset"
	"causet/internal/vclock"
)

// Validation errors returned by New.
var (
	ErrEmpty   = errors.New("interval: nonatomic event must be non-empty")
	ErrNotReal = errors.New("interval: nonatomic event may contain only real events")
)

// Interval is a nonatomic poset event: an immutable, deduplicated,
// (Proc, Pos)-sorted set of real events of a single execution.
type Interval struct {
	ex     *poset.Execution
	events []poset.EventID
	// first[i]/last[i] index into events for node i's extrema; -1 when the
	// interval has no event on node i.
	first, last []int
	nodes       []int // sorted node set N_X
}

// New validates and constructs an interval over ex from the given events.
// Events are deduplicated; at least one event is required and all must be
// real events of ex (Definition 1's "an event of interest to an application
// will usually not contain any dummy events" is enforced).
func New(ex *poset.Execution, events []poset.EventID) (*Interval, error) {
	if len(events) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]poset.EventID(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	dedup := sorted[:1]
	for _, e := range sorted[1:] {
		if e != dedup[len(dedup)-1] {
			dedup = append(dedup, e)
		}
	}
	for _, e := range dedup {
		if !ex.IsReal(e) {
			return nil, fmt.Errorf("%w: %v", ErrNotReal, e)
		}
	}
	iv := &Interval{
		ex:     ex,
		events: dedup,
		first:  make([]int, ex.NumProcs()),
		last:   make([]int, ex.NumProcs()),
	}
	for i := range iv.first {
		iv.first[i], iv.last[i] = -1, -1
	}
	for idx, e := range dedup {
		if iv.first[e.Proc] == -1 {
			iv.first[e.Proc] = idx
			iv.nodes = append(iv.nodes, e.Proc)
		}
		iv.last[e.Proc] = idx
	}
	return iv, nil
}

// MustNew is New that panics on error, for tests and fixed fixtures.
func MustNew(ex *poset.Execution, events []poset.EventID) *Interval {
	iv, err := New(ex, events)
	if err != nil {
		panic(err)
	}
	return iv
}

// Execution returns the execution the interval belongs to.
func (iv *Interval) Execution() *poset.Execution { return iv.ex }

// Events returns the interval's members in (Proc, Pos) order. The slice is
// shared; callers must not modify it.
func (iv *Interval) Events() []poset.EventID { return iv.events }

// Size reports |X|, the number of atomic events in the interval.
func (iv *Interval) Size() int { return len(iv.events) }

// Contains reports whether e is a member of the interval.
func (iv *Interval) Contains(e poset.EventID) bool {
	if e.Proc < 0 || e.Proc >= len(iv.first) || iv.first[e.Proc] == -1 {
		return false
	}
	lo, hi := iv.first[e.Proc], iv.last[e.Proc]
	idx := sort.Search(hi-lo+1, func(k int) bool { return iv.events[lo+k].Pos >= e.Pos })
	return idx <= hi-lo && iv.events[lo+idx] == e
}

// NodeSet returns N_X (Definition 1): the sorted set of nodes on which the
// interval has events. The slice is shared; callers must not modify it.
func (iv *Interval) NodeSet() []int { return iv.nodes }

// NodeCount reports |N_X|.
func (iv *Interval) NodeCount() int { return len(iv.nodes) }

// LeastOn returns the earliest member of the interval on node i in program
// order, with ok=false when the interval has no event there.
func (iv *Interval) LeastOn(i int) (poset.EventID, bool) {
	if i < 0 || i >= len(iv.first) || iv.first[i] == -1 {
		return poset.EventID{}, false
	}
	return iv.events[iv.first[i]], true
}

// GreatestOn returns the latest member of the interval on node i in program
// order, with ok=false when the interval has no event there.
func (iv *Interval) GreatestOn(i int) (poset.EventID, bool) {
	if i < 0 || i >= len(iv.last) || iv.last[i] == -1 {
		return poset.EventID{}, false
	}
	return iv.events[iv.last[i]], true
}

// PerNodeLeast returns the earliest member on each node of N_X, in node
// order. Under Definition 2 this is exactly the proxy L_X.
func (iv *Interval) PerNodeLeast() []poset.EventID {
	out := make([]poset.EventID, 0, len(iv.nodes))
	for _, i := range iv.nodes {
		out = append(out, iv.events[iv.first[i]])
	}
	return out
}

// PerNodeGreatest returns the latest member on each node of N_X, in node
// order. Under Definition 2 this is exactly the proxy U_X.
func (iv *Interval) PerNodeGreatest() []poset.EventID {
	out := make([]poset.EventID, 0, len(iv.nodes))
	for _, i := range iv.nodes {
		out = append(out, iv.events[iv.last[i]])
	}
	return out
}

// Overlaps reports whether the two intervals share any atomic event. The
// relation evaluators require disjoint pairs (see DESIGN.md on strictness).
func (iv *Interval) Overlaps(other *Interval) bool {
	a, b := iv, other
	if a.Size() > b.Size() {
		a, b = b, a
	}
	for _, e := range a.events {
		if b.Contains(e) {
			return true
		}
	}
	return false
}

// String renders the interval's members, e.g. "{p0:1 p2:3}".
func (iv *Interval) String() string {
	s := "{"
	for k, e := range iv.events {
		if k > 0 {
			s += " "
		}
		s += e.String()
	}
	return s + "}"
}

// ProxyKind selects an interval's beginning (L) or end (U) proxy.
type ProxyKind int

const (
	// ProxyL is L_X, the proxy for the interval's beginning.
	ProxyL ProxyKind = iota
	// ProxyU is U_X, the proxy for the interval's end.
	ProxyU
)

// String implements fmt.Stringer ("L" or "U").
func (k ProxyKind) String() string {
	switch k {
	case ProxyL:
		return "L"
	case ProxyU:
		return "U"
	}
	return fmt.Sprintf("ProxyKind(%d)", int(k))
}

// ProxyDef selects which proxy definition to apply.
type ProxyDef int

const (
	// DefPerNode is Definition 2: L_X (resp. U_X) holds, per node, the
	// member that precedes (resp. follows) every other member on the same
	// node — the per-node earliest (latest) events. Always non-empty.
	DefPerNode ProxyDef = iota
	// DefGlobal is Definition 3: L_X (resp. U_X) holds the members that
	// precede (resp. follow) *every* member of X in the causality order.
	// May be empty when X has no global minimum (maximum).
	DefGlobal
)

// String implements fmt.Stringer.
func (d ProxyDef) String() string {
	switch d {
	case DefPerNode:
		return "per-node (Definition 2)"
	case DefGlobal:
		return "global (Definition 3)"
	}
	return fmt.Sprintf("ProxyDef(%d)", int(d))
}

// Proxy computes the requested proxy of the interval as an event list.
//
// Under DefPerNode (Definition 2) the result is PerNodeLeast/PerNodeGreatest
// and clk may be nil. Under DefGlobal (Definition 3) causality tests are
// required, so clk must be non-nil; the result may be empty (the interval
// then has no Definition-3 proxy, which callers must handle — ProxyInterval
// reports it as an error).
func (iv *Interval) Proxy(kind ProxyKind, def ProxyDef, clk *vclock.Clocks) []poset.EventID {
	switch def {
	case DefPerNode:
		if kind == ProxyL {
			return iv.PerNodeLeast()
		}
		return iv.PerNodeGreatest()
	case DefGlobal:
		if clk == nil {
			panic("interval: DefGlobal proxy requires clocks")
		}
		var out []poset.EventID
		// Only per-node extrema can be global extrema, so scan those.
		candidates := iv.PerNodeLeast()
		if kind == ProxyU {
			candidates = iv.PerNodeGreatest()
		}
		for _, e := range candidates {
			ok := true
			for _, f := range iv.events {
				if kind == ProxyL && !clk.PrecedesEq(e, f) {
					ok = false
					break
				}
				if kind == ProxyU && !clk.PrecedesEq(f, e) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, e)
			}
		}
		return out
	default:
		panic(fmt.Sprintf("interval: unknown ProxyDef %d", int(def)))
	}
}

// ProxyInterval returns the proxy as an Interval, for feeding back into the
// relation evaluators (the proxies "are themselves nonatomic poset events",
// §1). Under DefGlobal it returns an error when the proxy is empty.
func (iv *Interval) ProxyInterval(kind ProxyKind, def ProxyDef, clk *vclock.Clocks) (*Interval, error) {
	events := iv.Proxy(kind, def, clk)
	if len(events) == 0 {
		return nil, fmt.Errorf("interval: %v proxy (%v) of %v is empty", kind, def, iv)
	}
	return New(iv.ex, events)
}

// RestrictTo returns the sub-interval of iv on the given nodes, or an error
// when nothing remains. Useful for projecting a system-wide activity onto a
// subsystem before evaluating relations.
func (iv *Interval) RestrictTo(nodes []int) (*Interval, error) {
	keep := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		keep[n] = true
	}
	var events []poset.EventID
	for _, e := range iv.events {
		if keep[e.Proc] {
			events = append(events, e)
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("interval: %v has no events on nodes %v", iv, nodes)
	}
	return New(iv.ex, events)
}

// Union returns the interval containing the events of both operands, which
// must belong to the same execution.
func (iv *Interval) Union(other *Interval) (*Interval, error) {
	if iv.ex != other.ex {
		return nil, fmt.Errorf("interval: Union across executions")
	}
	return New(iv.ex, append(append([]poset.EventID(nil), iv.events...), other.events...))
}

// Between returns the interval of real events that lie inside the cut hi
// but outside the cut lo — the activity of the execution window (lo, hi].
// Cuts are frontier vectors with one component per process (see
// internal/cuts); an error is returned when the window is empty or the
// frontiers are malformed.
func Between(ex *poset.Execution, lo, hi []int) (*Interval, error) {
	if len(lo) != ex.NumProcs() || len(hi) != ex.NumProcs() {
		return nil, fmt.Errorf("interval: window frontiers have %d/%d components for %d processes",
			len(lo), len(hi), ex.NumProcs())
	}
	var events []poset.EventID
	for p := 0; p < ex.NumProcs(); p++ {
		from := max(lo[p], 0)
		to := min(hi[p], ex.NumReal(p))
		for pos := from + 1; pos <= to; pos++ {
			events = append(events, poset.EventID{Proc: p, Pos: pos})
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("interval: window (%v, %v] contains no real events", lo, hi)
	}
	return New(ex, events)
}
