// Package monitor provides the application-facing layer of the library: a
// small boolean DSL over the causality relations, and a monitor that
// evaluates named synchronization conditions against the nonatomic events of
// a recorded execution. This is the paper's Problem 4 — "for every pair of
// nonatomic poset events X and Y, efficiently determine if a specific
// relation r(X, Y) holds, and all the relations that hold" — packaged the
// way a real-time application would consume it (the paper's §1 names
// distributed predicate specification in an air-defence control system).
//
// Condition syntax (loosest to tightest binding):
//
//	expr    := or ( ("->" | "<->") expr )?     right-associative
//	or      := and ( "||" and )*
//	and     := unary ( "&&" unary )*
//	unary   := "!" unary | "(" expr ")" | atom
//	atom    := REL "(" operand "," operand ")"
//	operand := IDENT | ("L"|"U") "(" IDENT ")"
//	REL     := R1 | R1' | R2 | R2' | R3 | R3' | R4 | R4'   (or r1, R2p, ...)
//
// Examples:
//
//	R1(detect, engage)
//	R2'(L(track), U(launch)) && !R3(track, abort)
//	R4(a, b) || R4(b, a)
//	R4(req, grant) -> R1(req, grant)      (conditional contract)
//	R4(a, b) <-> !R4(b, a)                (exactly one direction)
package monitor

import (
	"fmt"
	"strings"

	"causet/internal/core"
	"causet/internal/interval"
)

// Expr is a parsed condition. Exprs are immutable and safe for concurrent
// evaluation.
type Expr interface {
	fmt.Stringer
	// Referenced appends the interval names the expression mentions.
	referenced(set map[string]bool)
	// eval evaluates against an environment.
	eval(env *evalEnv) (bool, error)
}

// evalEnv carries what atom evaluation needs.
type evalEnv struct {
	a         *core.Analysis
	eval      core.Evaluator
	intervals map[string]*interval.Interval
	// checked: reject overlapping operand pairs (honest semantics).
	checked bool
}

// operand is an interval reference with an optional proxy application.
type operand struct {
	name     string
	useProxy bool
	proxy    interval.ProxyKind
}

func (o operand) String() string {
	if o.useProxy {
		return fmt.Sprintf("%v(%s)", o.proxy, o.name)
	}
	return o.name
}

func (o operand) resolve(env *evalEnv) (*interval.Interval, error) {
	iv, ok := env.intervals[o.name]
	if !ok {
		return nil, &UndefinedError{Name: o.name}
	}
	if !o.useProxy {
		return iv, nil
	}
	return iv.ProxyInterval(o.proxy, interval.DefPerNode, env.a.Clocks())
}

// UndefinedError reports an atom referencing an interval the monitor does
// not (yet) know. The monitor uses it to classify conditions as pending.
type UndefinedError struct{ Name string }

// Error implements error.
func (e *UndefinedError) Error() string {
	return fmt.Sprintf("monitor: interval %q is not defined", e.Name)
}

// atomExpr is REL(operand, operand).
type atomExpr struct {
	rel  core.Relation
	x, y operand
}

func (a *atomExpr) String() string {
	return fmt.Sprintf("%v(%v, %v)", a.rel, a.x, a.y)
}

func (a *atomExpr) referenced(set map[string]bool) {
	set[a.x.name] = true
	set[a.y.name] = true
}

func (a *atomExpr) eval(env *evalEnv) (bool, error) {
	x, err := a.x.resolve(env)
	if err != nil {
		return false, err
	}
	y, err := a.y.resolve(env)
	if err != nil {
		return false, err
	}
	if env.checked {
		return env.a.EvalChecked(env.eval, a.rel, x, y)
	}
	return env.eval.Eval(a.rel, x, y), nil
}

type notExpr struct{ e Expr }

func (n *notExpr) String() string                 { return "!" + parenthesize(n.e) }
func (n *notExpr) referenced(set map[string]bool) { n.e.referenced(set) }
func (n *notExpr) eval(env *evalEnv) (bool, error) {
	v, err := n.e.eval(env)
	return !v, err
}

type binExpr struct {
	op   string // "&&", "||", "->", or "<->"
	l, r Expr
}

func (b *binExpr) String() string {
	return fmt.Sprintf("%s %s %s", parenthesize(b.l), b.op, parenthesize(b.r))
}

func (b *binExpr) referenced(set map[string]bool) {
	b.l.referenced(set)
	b.r.referenced(set)
}

func (b *binExpr) eval(env *evalEnv) (bool, error) {
	// No short-circuiting: evaluate both sides so undefined intervals are
	// reported deterministically regardless of operand truth values.
	lv, lerr := b.l.eval(env)
	rv, rerr := b.r.eval(env)
	if lerr != nil {
		return false, lerr
	}
	if rerr != nil {
		return false, rerr
	}
	switch b.op {
	case "&&":
		return lv && rv, nil
	case "||":
		return lv || rv, nil
	case "->":
		return !lv || rv, nil
	default: // "<->"
		return lv == rv, nil
	}
}

func parenthesize(e Expr) string {
	if _, ok := e.(*binExpr); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Referenced returns the sorted interval names mentioned by the expression.
func Referenced(e Expr) []string {
	set := make(map[string]bool)
	e.referenced(set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ParseError reports a syntax error with its byte offset in the source.
type ParseError struct {
	Src    string
	Offset int
	Msg    string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("monitor: parse error at offset %d in %q: %s", e.Offset, e.Src, e.Msg)
}

// Parse parses a condition expression.
func Parse(src string) (Expr, error) {
	p := &parser{lex: lexer{src: src}}
	p.next()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %q after expression", p.tok.text)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for fixed condition tables.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ---- lexer ----

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokAnd
	tokOr
	tokNot
	tokImplies
	tokIff
	tokErr
)

type token struct {
	kind tokKind
	text string
	off  int
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) lex() token {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, off: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", off: start}
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", off: start}
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", off: start}
	case '!':
		l.pos++
		return token{kind: tokNot, text: "!", off: start}
	case '&', '|':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == c {
			l.pos += 2
			if c == '&' {
				return token{kind: tokAnd, text: "&&", off: start}
			}
			return token{kind: tokOr, text: "||", off: start}
		}
		l.pos++
		return token{kind: tokErr, text: string(c), off: start}
	case '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{kind: tokImplies, text: "->", off: start}
		}
		l.pos++
		return token{kind: tokErr, text: "-", off: start}
	case '<':
		if l.pos+2 < len(l.src) && l.src[l.pos+1] == '-' && l.src[l.pos+2] == '>' {
			l.pos += 3
			return token{kind: tokIff, text: "<->", off: start}
		}
		l.pos++
		return token{kind: tokErr, text: "<", off: start}
	}
	if isIdentStart(c) {
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		// Identifiers may contain '-' (e.g. "ring-round-0"), which collides
		// with a trailing "->" operator written without a space: in "a->b"
		// the '-' belongs to the operator, not the name.
		if l.pos < len(l.src) && l.src[l.pos] == '>' && l.src[l.pos-1] == '-' {
			l.pos--
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], off: start}
	}
	l.pos++
	return token{kind: tokErr, text: string(c), off: start}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9') || c == '\'' || c == '-'
}

// ---- parser ----

type parser struct {
	lex lexer
	tok token
}

func (p *parser) next() { p.tok = p.lex.lex() }

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Src: p.lex.src, Offset: p.tok.off, Msg: fmt.Sprintf(format, args...)}
}

// parseExpr handles the loosest level: right-associative "->" and "<->".
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokImplies || p.tok.kind == tokIff {
		op := p.tok.text
		p.next()
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &binExpr{op: op, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAnd {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.tok.kind {
	case tokNot:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notExpr{e: e}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("expected ')', got %q", p.tok.text)
		}
		p.next()
		return e, nil
	case tokIdent:
		return p.parseAtom()
	case tokEOF:
		return nil, p.errf("unexpected end of expression")
	default:
		return nil, p.errf("unexpected %q", p.tok.text)
	}
}

func (p *parser) parseAtom() (Expr, error) {
	rel, err := core.ParseRelation(p.tok.text)
	if err != nil {
		return nil, p.errf("expected a relation name (R1..R4'), got %q", p.tok.text)
	}
	p.next()
	if p.tok.kind != tokLParen {
		return nil, p.errf("expected '(' after relation, got %q", p.tok.text)
	}
	p.next()
	x, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokComma {
		return nil, p.errf("expected ',', got %q", p.tok.text)
	}
	p.next()
	y, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokRParen {
		return nil, p.errf("expected ')', got %q", p.tok.text)
	}
	p.next()
	return &atomExpr{rel: rel, x: x, y: y}, nil
}

func (p *parser) parseOperand() (operand, error) {
	if p.tok.kind != tokIdent {
		return operand{}, p.errf("expected interval name, got %q", p.tok.text)
	}
	name := p.tok.text
	p.next()
	// L(name) / U(name) proxy application.
	if (name == "L" || name == "U") && p.tok.kind == tokLParen {
		p.next()
		if p.tok.kind != tokIdent {
			return operand{}, p.errf("expected interval name inside %s(...), got %q", name, p.tok.text)
		}
		inner := p.tok.text
		p.next()
		if p.tok.kind != tokRParen {
			return operand{}, p.errf("expected ')' closing %s(...), got %q", name, p.tok.text)
		}
		p.next()
		kind := interval.ProxyL
		if name == "U" {
			kind = interval.ProxyU
		}
		return operand{name: inner, useProxy: true, proxy: kind}, nil
	}
	if strings.ContainsAny(name, "'") {
		return operand{}, &ParseError{Src: p.lex.src, Offset: p.tok.off, Msg: fmt.Sprintf("interval name %q may not contain apostrophes", name)}
	}
	return operand{name: name}, nil
}
