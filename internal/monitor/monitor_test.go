package monitor

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"causet/internal/core"
	"causet/internal/interval"
	"causet/internal/sim"
)

// fixture: a 3-round ring; rounds are causally stacked, so R2/R3'/R4 hold
// between consecutive rounds and R1 does not (first send of a round has no
// predecessor in the previous round's... actually R1(r0,r1) fails because
// round-0 events on late nodes are concurrent with round-1's first send).
func fixture(t *testing.T) *Monitor {
	t.Helper()
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 3, Seed: 2})
	m := New(res.Exec)
	for i, ph := range res.Phases {
		name := []string{"r0", "r1", "r2"}[i]
		if err := m.Define(name, ph.Events); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestParseValid(t *testing.T) {
	for _, src := range []string{
		"R1(a, b)",
		"R2'(a,b)",
		"r3prime(a, b)",
		"R1(L(a), U(b))",
		"!R4(a, b)",
		"R1(a,b) && R2(b,c)",
		"R1(a,b) || R2(b,c) && !R3(c,d)",
		"(R1(a,b) || R2(b,c)) && R3(c,d)",
		"R4(x-1, phase_2)",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ src, wantMsg string }{
		{"", "unexpected end"},
		{"R1(a, b) extra", "after expression"},
		{"R9(a, b)", "relation name"},
		{"foo(a, b)", "relation name"},
		{"R1 a, b)", "expected '('"},
		{"R1(, b)", "interval name"},
		{"R1(a b)", "expected ','"},
		{"R1(a, b", "expected ')'"},
		{"R1(a, b) &&", "unexpected end"},
		{"R1(a, b) & R2(a,b)", "unexpected"},
		{"(R1(a,b)", "expected ')'"},
		{"R1(L(, b)", "interval name inside"},
		{"R1(L(a, b)", "closing"},
		{"#", "unexpected"},
	} {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", tc.src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error type %T", tc.src, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.src, err, tc.wantMsg)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// || binds looser than &&: a || b && c parses as a || (b && c).
	e := MustParse("R1(a,b) || R2(a,b) && R3(a,b)")
	want := "R1(a, b) || (R2(a, b) && R3(a, b))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	// ! binds tightest.
	e2 := MustParse("!R1(a,b) && R2(a,b)")
	if got := e2.String(); got != "!R1(a, b) && R2(a, b)" {
		t.Errorf("String = %q", got)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, src := range []string{
		"R1(a, b)",
		"!(R1(a, b) && R2'(b, c))",
		"R3(L(a), U(b)) || R4(c, d)",
	} {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Errorf("round trip changed: %q -> %q", e1.String(), e2.String())
		}
	}
}

func TestReferenced(t *testing.T) {
	e := MustParse("R1(a, b) && !R2(L(c), a) || R3(d, d)")
	got := Referenced(e)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Referenced = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Referenced = %v, want %v", got, want)
		}
	}
}

func TestMonitorEval(t *testing.T) {
	m := fixture(t)
	// Consecutive ring rounds: R2, R3', R4 hold; R1 backwards must not.
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"R2(r0, r1)", true},
		{"R3'(r0, r1)", true},
		{"R4(r0, r2)", true},
		{"R4(r2, r0)", false},
		{"R2(r0, r1) && R2(r1, r2)", true},
		{"R2(r0, r1) && R4(r2, r0)", false},
		{"R4(r2, r0) || R4(r0, r2)", true},
		{"!R4(r2, r0)", true},
		{"R4(L(r0), U(r1))", true},
		{"R1(U(r2), L(r0))", false},
	} {
		got, err := m.Eval(tc.src)
		if err != nil {
			t.Errorf("Eval(%q): %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Eval(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
	// Eval agrees with direct core evaluation.
	x, _ := m.Interval("r0")
	y, _ := m.Interval("r1")
	want := core.NewNaive(m.Analysis()).Eval(core.R2, x, y)
	got, err := m.Eval("R2(r0, r1)")
	if err != nil || got != want {
		t.Errorf("Eval disagrees with core: %v, %v", got, err)
	}
	// Undefined interval in one-shot Eval is an error.
	if _, err := m.Eval("R1(r0, nope)"); err == nil {
		t.Errorf("Eval with undefined interval succeeded")
	} else {
		var ue *UndefinedError
		if !errors.As(err, &ue) || ue.Name != "nope" {
			t.Errorf("err = %v, want UndefinedError{nope}", err)
		}
	}
}

func TestMonitorLifecycle(t *testing.T) {
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 2, Seed: 5})
	m := New(res.Exec)
	if err := m.AddCondition("ordered", "R2(first, second)"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddCondition("never-backwards", "!R4(second, first)"); err != nil {
		t.Fatal(err)
	}
	// Nothing defined yet: both pending.
	for _, r := range m.Check() {
		if r.State != Pending {
			t.Errorf("%s: state = %v, want pending", r.Name, r.State)
		}
	}
	if err := m.Define("first", res.Phases[0].Events); err != nil {
		t.Fatal(err)
	}
	// Still pending: "second" missing.
	for _, r := range m.Check() {
		if r.State != Pending {
			t.Errorf("%s: state = %v, want pending", r.Name, r.State)
		}
	}
	if err := m.Define("second", res.Phases[1].Events); err != nil {
		t.Fatal(err)
	}
	results := m.Check()
	if len(results) != 2 {
		t.Fatalf("Check returned %d results", len(results))
	}
	for _, r := range results {
		if r.State != Holds {
			t.Errorf("%s: state = %v (err=%v), want holds", r.Name, r.State, r.Err)
		}
	}
	// A condition that is false reports Violated.
	if err := m.AddCondition("backwards", "R1(second, first)"); err != nil {
		t.Fatal(err)
	}
	last := m.Check()[2]
	if last.State != Violated {
		t.Errorf("backwards: state = %v, want violated", last.State)
	}
}

func TestMonitorUndefine(t *testing.T) {
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 2, Seed: 5})
	m := New(res.Exec)
	if err := m.Define("first", res.Phases[0].Events); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("second", res.Phases[1].Events); err != nil {
		t.Fatal(err)
	}
	m.Undefine("first")
	if _, ok := m.Interval("first"); ok {
		t.Fatal("interval still registered after Undefine")
	}
	if names := m.IntervalNames(); len(names) != 1 || names[0] != "second" {
		t.Fatalf("IntervalNames = %v, want [second]", names)
	}
	// The name becomes available again, and unknown names are a no-op.
	m.Undefine("never-existed")
	if err := m.Define("first", res.Phases[0].Events); err != nil {
		t.Fatalf("redefine after Undefine: %v", err)
	}
}

func TestMonitorFailedOnOverlap(t *testing.T) {
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 1, Seed: 5})
	m := New(res.Exec)
	if err := m.Define("whole", res.Phases[0].Events); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("alias", res.Phases[0].Events); err != nil {
		t.Fatal(err)
	}
	if err := m.AddCondition("self", "R4(whole, alias)"); err != nil {
		t.Fatal(err)
	}
	r := m.Check()[0]
	if r.State != Failed || r.Err == nil {
		t.Fatalf("overlapping operands: state = %v err = %v, want failed", r.State, r.Err)
	}
	var ov *core.ErrOverlap
	if !errors.As(r.Err, &ov) {
		t.Errorf("err = %v, want ErrOverlap", r.Err)
	}
}

func TestMonitorDefineErrors(t *testing.T) {
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 1, Seed: 5})
	other := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 1, Seed: 6})
	m := New(res.Exec)
	if err := m.Define("", res.Phases[0].Events); err == nil {
		t.Errorf("empty name accepted")
	}
	if err := m.Define("x", nil); err == nil {
		t.Errorf("empty interval accepted")
	}
	if err := m.Define("x", res.Phases[0].Events); err != nil {
		t.Fatal(err)
	}
	if err := m.Define("x", res.Phases[0].Events); err == nil {
		t.Errorf("duplicate name accepted")
	}
	// Interval from another execution.
	ivOther, err := interval.New(other.Exec, other.Phases[0].Events)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DefineInterval("y", ivOther); err == nil {
		t.Errorf("foreign interval accepted")
	}
	// Duplicate condition name.
	if err := m.AddCondition("c", "R1(x, x)"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddCondition("c", "R2(x, x)"); err == nil {
		t.Errorf("duplicate condition accepted")
	}
	// Syntax error surfaces from AddCondition.
	if err := m.AddCondition("bad", "R1(x"); err == nil {
		t.Errorf("syntax error accepted")
	}
	if got := len(m.Conditions()); got != 1 {
		t.Errorf("conditions = %d, want 1", got)
	}
	names := m.IntervalNames()
	if len(names) != 1 || names[0] != "x" {
		t.Errorf("IntervalNames = %v", names)
	}
}

func TestHoldingRelations(t *testing.T) {
	m := fixture(t)
	rels, err := m.HoldingRelations("r0", "r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatalf("no relations hold between stacked ring rounds")
	}
	// R4 with any proxy combination must be among them.
	found := false
	for _, r := range rels {
		if r.R == core.R4 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("R4 missing from holding set %v", rels)
	}
	if _, err := m.HoldingRelations("r0", "nope"); err == nil {
		t.Errorf("undefined interval accepted")
	}
	if _, err := m.HoldingRelations("nope", "r0"); err == nil {
		t.Errorf("undefined interval accepted")
	}
}

func TestMonitorConcurrent(t *testing.T) {
	m := fixture(t)
	if err := m.AddCondition("c1", "R2(r0, r1)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				m.Check()
				if _, err := m.Eval("R4(r0, r2) && !R1(r2, r0)"); err != nil {
					t.Errorf("Eval: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Pending, Holds, Violated, Failed, State(9)} {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}

func TestImplicationOperators(t *testing.T) {
	m := fixture(t)
	// Ring rounds: R4(r0, r1) true, R4(r1, r0) false.
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"R4(r0, r1) -> R2(r0, r1)", true},   // true -> true
		{"R4(r0, r1) -> R4(r1, r0)", false},  // true -> false
		{"R4(r1, r0) -> R1(r0, r1)", true},   // false -> anything
		{"R4(r0, r1) <-> !R4(r1, r0)", true}, // both true
		{"R4(r0, r1) <-> R4(r1, r0)", false},
		// Right associativity: a -> b -> c ≡ a -> (b -> c).
		{"R4(r0, r1) -> R4(r1, r0) -> R4(r0, r2)", true},
		// -> binds looser than ||.
		{"R4(r1, r0) || R4(r0, r1) -> R2(r0, r1)", true},
		// No-space form with hyphenated interval names.
		{"R4(r0, r1)->R2(r0, r1)", true},
		// Parenthesized implication inside a conjunction.
		{"(R4(r0, r1) -> R2(r0, r1)) && !R4(r2, r0)", true},
	} {
		got, err := m.Eval(tc.src)
		if err != nil {
			t.Errorf("Eval(%q): %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Eval(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
	// Malformed operators are rejected.
	for _, bad := range []string{"R4(r0, r1) - R2(r0, r1)", "R4(r0, r1) < R2(r0, r1)", "R4(r0,r1) <- R2(r0,r1)"} {
		if _, err := m.Eval(bad); err == nil {
			t.Errorf("Eval(%q) accepted", bad)
		}
	}
}

func TestImplicationRoundTrip(t *testing.T) {
	for _, src := range []string{
		"R1(a, b) -> R2(b, c)",
		"R1(a, b) <-> (R2(b, c) || R3(c, d))",
		"R1(a, b) -> R2(b, c) -> R3(c, d)",
	} {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Errorf("round trip changed: %q -> %q", e1.String(), e2.String())
		}
	}
	// Hyphen-name boundary: interval names keep interior hyphens while a
	// trailing -> is recognized.
	e := MustParse("R4(ring-round-0, ring-round-1)->R1(a, b)")
	refs := Referenced(e)
	if len(refs) != 4 || refs[2] != "ring-round-0" || refs[3] != "ring-round-1" {
		t.Errorf("Referenced = %v", refs)
	}
}
