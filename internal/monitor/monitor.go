package monitor

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"causet/internal/core"
	"causet/internal/interval"
	"causet/internal/poset"
)

// State classifies a condition's status at a Check.
type State int

const (
	// Pending: the condition references intervals not yet defined.
	Pending State = iota
	// Holds: the condition evaluated to true.
	Holds
	// Violated: the condition evaluated to false.
	Violated
	// Failed: evaluation errored (e.g. overlapping operands).
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Holds:
		return "holds"
	case Violated:
		return "violated"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Result is the outcome of checking one condition.
type Result struct {
	Name  string
	State State
	Err   error // non-nil iff State == Failed
}

// Condition is a named, parsed synchronization condition.
type Condition struct {
	Name string
	Src  string
	Expr Expr
}

// Monitor evaluates synchronization conditions over the nonatomic events of
// one execution. Intervals may be registered incrementally (e.g. as an
// online application completes its high-level activities); Check reports
// each condition as pending until every interval it references is defined.
//
// A Monitor is safe for concurrent use.
type Monitor struct {
	mu         sync.RWMutex
	a          *core.Analysis
	eval       core.Evaluator
	intervals  map[string]*interval.Interval
	conditions []*Condition
}

// New creates a monitor over ex using the paper's linear-time evaluator.
func New(ex *poset.Execution) *Monitor {
	return NewWithAnalysis(core.NewAnalysis(ex))
}

// NewWithAnalysis creates a monitor over an existing Analysis, sharing its
// cut caches instead of recomputing the timestamp structure. This is how the
// online monitor keeps one persistent inner monitor across snapshot epochs.
func NewWithAnalysis(a *core.Analysis) *Monitor {
	return &Monitor{
		a:         a,
		eval:      core.NewFast(a),
		intervals: make(map[string]*interval.Interval),
	}
}

// Rebase swaps the monitor onto a new Analysis whose execution must extend
// the current one (poset.Prefix). Registered intervals and conditions are
// kept: every interval's home execution is validated to be a prefix of the
// new one, so all previously-computed verdicts remain valid (appends never
// change causality among recorded events). On error the monitor is
// unchanged.
func (m *Monitor) Rebase(a *core.Analysis) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, iv := range m.intervals {
		if !poset.Prefix(iv.Execution(), a.Execution()) {
			return fmt.Errorf("monitor: rebase: interval %q does not belong to a prefix of the new execution", name)
		}
	}
	m.a = a
	m.eval = core.NewFast(a)
	return nil
}

// Analysis exposes the underlying analysis (timestamps, cut caches).
func (m *Monitor) Analysis() *core.Analysis { return m.a }

// Define registers the named nonatomic event from raw member events.
// Redefining a name is an error (conditions may already have been checked
// against the old value).
func (m *Monitor) Define(name string, events []poset.EventID) error {
	iv, err := interval.New(m.a.Execution(), events)
	if err != nil {
		return fmt.Errorf("monitor: interval %q: %w", name, err)
	}
	return m.DefineInterval(name, iv)
}

// DefineInterval registers an already-constructed interval under name.
func (m *Monitor) DefineInterval(name string, iv *interval.Interval) error {
	if name == "" {
		return errors.New("monitor: interval name must be non-empty")
	}
	if !poset.Prefix(iv.Execution(), m.a.Execution()) {
		return fmt.Errorf("monitor: interval %q belongs to a different execution", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.intervals[name]; dup {
		return fmt.Errorf("monitor: interval %q already defined", name)
	}
	m.intervals[name] = iv
	return nil
}

// Undefine removes a registered interval so its memory (and its cut-cache
// entries in future carried Analyses) can be reclaimed. It is the retention
// path's release hook: the online monitor calls it once every condition
// referencing the interval has settled and the interval has aged out of the
// retention window. Undefining an unknown name is a no-op. Conditions that
// still reference the name will fail their next evaluation with an undefined
// reference — callers are responsible for settling them first.
func (m *Monitor) Undefine(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.intervals, name)
}

// Interval returns a registered interval.
func (m *Monitor) Interval(name string) (*interval.Interval, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	iv, ok := m.intervals[name]
	return iv, ok
}

// IntervalNames returns the sorted names of the registered intervals.
func (m *Monitor) IntervalNames() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.intervals))
	for name := range m.intervals {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddCondition parses src and registers it under name.
func (m *Monitor) AddCondition(name, src string) error {
	expr, err := Parse(src)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.conditions {
		if c.Name == name {
			return fmt.Errorf("monitor: condition %q already defined", name)
		}
	}
	m.conditions = append(m.conditions, &Condition{Name: name, Src: src, Expr: expr})
	return nil
}

// AddConditionParsed registers an already-compiled condition, sharing the
// parsed expression instead of re-parsing its source. Expr must be non-nil.
func (m *Monitor) AddConditionParsed(c *Condition) error {
	if c == nil || c.Expr == nil {
		return errors.New("monitor: AddConditionParsed requires a compiled condition")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, have := range m.conditions {
		if have.Name == c.Name {
			return fmt.Errorf("monitor: condition %q already defined", c.Name)
		}
	}
	m.conditions = append(m.conditions, c)
	return nil
}

// Conditions returns the registered conditions in registration order.
func (m *Monitor) Conditions() []*Condition {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]*Condition(nil), m.conditions...)
}

// Check evaluates every registered condition and returns one result per
// condition, in registration order.
func (m *Monitor) Check() []Result {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Result, 0, len(m.conditions))
	for _, c := range m.conditions {
		out = append(out, m.checkLocked(c))
	}
	return out
}

func (m *Monitor) checkLocked(c *Condition) Result {
	for _, name := range Referenced(c.Expr) {
		if _, ok := m.intervals[name]; !ok {
			return Result{Name: c.Name, State: Pending}
		}
	}
	env := &evalEnv{a: m.a, eval: m.eval, intervals: m.intervals, checked: true}
	held, err := c.Expr.eval(env)
	switch {
	case err != nil:
		return Result{Name: c.Name, State: Failed, Err: err}
	case held:
		return Result{Name: c.Name, State: Holds}
	default:
		return Result{Name: c.Name, State: Violated}
	}
}

// CheckCondition evaluates a single condition against the registered
// intervals. The condition need not have been registered with this monitor;
// only its Expr is consulted. This is the indexed online check loop's entry
// point — it evaluates exactly the condition that just became unblocked,
// skipping the full registration scan of Check.
func (m *Monitor) CheckCondition(c *Condition) Result {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.checkLocked(c)
}

// Eval parses and evaluates a one-shot expression against the registered
// intervals. Unlike Check it fails (rather than reporting pending) on
// undefined intervals.
func (m *Monitor) Eval(src string) (bool, error) {
	expr, err := Parse(src)
	if err != nil {
		return false, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	env := &evalEnv{a: m.a, eval: m.eval, intervals: m.intervals, checked: true}
	return expr.eval(env)
}

// HeldTable1 reports which of the 8 Table 1 relations hold between two
// registered intervals, in core.Relations order. It replaces the old pattern
// of formatting and re-parsing one DSL expression per relation.
func (m *Monitor) HeldTable1(xName, yName string) ([]core.Relation, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x, ok := m.intervals[xName]
	if !ok {
		return nil, &UndefinedError{Name: xName}
	}
	y, ok := m.intervals[yName]
	if !ok {
		return nil, &UndefinedError{Name: yName}
	}
	var held []core.Relation
	for _, rel := range core.Relations() {
		ok, err := m.a.EvalChecked(m.eval, rel, x, y)
		if err != nil {
			return nil, err
		}
		if ok {
			held = append(held, rel)
		}
	}
	return held, nil
}

// HoldingRelations reports which of the 32 relations of ℛ hold between two
// registered intervals — Problem 4(ii) as a monitor query.
func (m *Monitor) HoldingRelations(xName, yName string) ([]core.Rel32, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x, ok := m.intervals[xName]
	if !ok {
		return nil, &UndefinedError{Name: xName}
	}
	y, ok := m.intervals[yName]
	if !ok {
		return nil, &UndefinedError{Name: yName}
	}
	if x.Overlaps(y) {
		return nil, &core.ErrOverlap{X: x, Y: y}
	}
	return m.a.HoldingRel32(m.eval, x, y), nil
}
