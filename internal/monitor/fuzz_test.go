package monitor

import (
	"strings"
	"testing"
	"testing/quick"

	"causet/internal/core"
	"causet/internal/sim"
)

// FuzzParse exercises the DSL parser with arbitrary inputs: it must never
// panic, and any expression it accepts must render to a string that parses
// back to the same rendering (print/parse stability).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"R1(a, b)",
		"R2'(L(a), U(b)) && !R3(c, d)",
		"((R4(a,b)))",
		"R1(a,b) || R2(b,c) && R3(c,d)",
		"!!!R4(x, y)",
		"R9(a, b)",
		"R1(L(, b)",
		"&& || ! ( ) ,",
		"r2p(l, u)",
		"R1(a'b, c)",
		"\x00\xff",
		strings.Repeat("(", 1000),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		rendered := expr.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("rendering not stable: %q -> %q", rendered, again.String())
		}
	})
}

// FuzzConditionParser fuzzes the full condition path — AddCondition on a
// live monitor with defined intervals, then Check — where FuzzParse stops at
// the parser. Nothing here may panic, whatever the input: an accepted
// condition must evaluate to a settled state (or a structured error), its
// rendering must be a parse→print→parse fixpoint, and Referenced must return
// only names that actually occur in the source.
func FuzzConditionParser(f *testing.F) {
	for _, seed := range []string{
		"R1(r0, r1)",
		"!R4(r2, r0) && R2'(r0, r2)",
		"R3(ghost, r1)", // undefined interval -> Pending, not panic
		"R1(r0, r0)",    // overlapping operands -> Failed, not panic
		"R2(L(r0), U(r1)) || R3'(r1, r2)",
		"R1(r0, r1) -> R2(r1, r2)",
		"R1(r0,r1) <-> !R1(r1,r0)",
		"(((R4(r0, r2))))",
		"R1(\xffbad, r1)",
		"!",
		"R1(r0, r1) && ",
		strings.Repeat("!", 500) + "R1(r0, r1)",
	} {
		f.Add(seed)
	}
	res := sim.MustGenerate(sim.Config{Pattern: sim.Ring, Procs: 3, Rounds: 3, Seed: 2})
	names := []string{"r0", "r1", "r2"}
	f.Fuzz(func(t *testing.T, src string) {
		// Fresh monitor per input: conditions are memoized after Check, and a
		// shared instance would also hit the duplicate-name error path only.
		m := New(res.Exec)
		for i, ph := range res.Phases {
			if err := m.Define(names[i], ph.Events); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.AddCondition("fuzzed", src); err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted conditions must survive the whole pipeline.
		for _, res := range m.Check() {
			switch res.State {
			case Holds, Violated, Pending:
			case Failed:
				if res.Err == nil {
					t.Fatalf("Failed state without an error for %q", src)
				}
			default:
				t.Fatalf("unknown state %v for %q", res.State, src)
			}
		}
		expr, err := Parse(src)
		if err != nil {
			t.Fatalf("AddCondition accepted %q but Parse rejected it: %v", src, err)
		}
		rendered := expr.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("rendering not stable: %q -> %q", rendered, again.String())
		}
		for _, name := range Referenced(expr) {
			if !strings.Contains(src, name) {
				t.Fatalf("Referenced reports %q, which does not occur in %q", name, src)
			}
		}
	})
}

// TestQuickRandomExprRoundTrip generates random ASTs and checks the
// print/parse round trip — structured coverage complementing FuzzParse.
func TestQuickRandomExprRoundTrip(t *testing.T) {
	// Encode a random expression tree from a byte budget.
	var build func(budget []byte) (Expr, []byte)
	build = func(budget []byte) (Expr, []byte) {
		if len(budget) == 0 {
			return &atomExpr{rel: 0, x: operand{name: "a"}, y: operand{name: "b"}}, nil
		}
		op := budget[0] % 5
		budget = budget[1:]
		switch op {
		case 0, 1: // atom
			rel := int(op)
			if len(budget) > 0 {
				rel = int(budget[0]) % 8
				budget = budget[1:]
			}
			x := operand{name: "iv" + string(rune('a'+rel))}
			y := operand{name: "other"}
			if rel%2 == 0 {
				x = operand{name: "p", useProxy: true, proxy: 0}
			}
			return &atomExpr{rel: core.Relation(rel % 8), x: x, y: y}, budget
		case 2: // not
			inner, rest := build(budget)
			return &notExpr{e: inner}, rest
		case 3: // and
			l, rest := build(budget)
			r, rest2 := build(rest)
			return &binExpr{op: "&&", l: l, r: r}, rest2
		default: // or
			l, rest := build(budget)
			r, rest2 := build(rest)
			return &binExpr{op: "||", l: l, r: r}, rest2
		}
	}
	f := func(budget []byte) bool {
		if len(budget) > 40 {
			budget = budget[:40]
		}
		expr, _ := build(budget)
		rendered := expr.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Logf("render: %q", rendered)
			return false
		}
		return again.String() == rendered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
