package monitor

import (
	"fmt"

	"causet/internal/core"
	"causet/internal/interval"
)

// Atom is one relation application r(x, y) of a parsed condition, exposed
// for the explanation engine (internal/explain): walking a condition's
// atoms lets a caller re-derive each leaf verdict with witness capture and
// attribute the condition's outcome to specific causal evidence.
type Atom struct {
	Rel  core.Relation
	X, Y AtomOperand
}

// String renders the atom in condition syntax, e.g. "R2'(L(track), launch)".
func (a Atom) String() string {
	return fmt.Sprintf("%v(%v, %v)", a.Rel, a.X, a.Y)
}

// AtomOperand is an interval reference, optionally behind a proxy
// application (L/U under the per-node definition, matching evaluation).
type AtomOperand struct {
	Name     string
	UseProxy bool
	Proxy    interval.ProxyKind
}

// String renders the operand in condition syntax.
func (o AtomOperand) String() string {
	if o.UseProxy {
		return fmt.Sprintf("%v(%s)", o.Proxy, o.Name)
	}
	return o.Name
}

// Resolve materializes the operand against the named intervals exactly as
// condition evaluation does (proxies under interval.DefPerNode). It returns
// an *UndefinedError when the interval is unknown.
func (o AtomOperand) Resolve(a *core.Analysis, intervals map[string]*interval.Interval) (*interval.Interval, error) {
	iv, ok := intervals[o.Name]
	if !ok {
		return nil, &UndefinedError{Name: o.Name}
	}
	if !o.UseProxy {
		return iv, nil
	}
	return iv.ProxyInterval(o.Proxy, interval.DefPerNode, a.Clocks())
}

// Atoms returns the relation atoms of e in left-to-right syntactic order.
func Atoms(e Expr) []Atom {
	var out []Atom
	collectAtoms(e, &out)
	return out
}

func collectAtoms(e Expr, out *[]Atom) {
	switch v := e.(type) {
	case *atomExpr:
		*out = append(*out, Atom{
			Rel: v.rel,
			X:   AtomOperand{Name: v.x.name, UseProxy: v.x.useProxy, Proxy: v.x.proxy},
			Y:   AtomOperand{Name: v.y.name, UseProxy: v.y.useProxy, Proxy: v.y.proxy},
		})
	case *notExpr:
		collectAtoms(v.e, out)
	case *binExpr:
		collectAtoms(v.l, out)
		collectAtoms(v.r, out)
	default:
		panic(fmt.Sprintf("monitor: unknown expression node %T", e))
	}
}
