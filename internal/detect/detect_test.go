package detect

import (
	"errors"
	"math/rand"
	"testing"

	"causet/internal/core"
	"causet/internal/cuts"
	"causet/internal/interval"
	"causet/internal/poset"
	"causet/internal/poset/posettest"
)

// TestStatesMatchBruteForce: the BFS enumeration of consistent global
// states equals the brute-force filter of all frontier vectors.
func TestStatesMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for trial := 0; trial < 25; trial++ {
		ex := posettest.Random(r, 2+r.Intn(3), 3+r.Intn(8), 0.5)
		d := New(ex, 0)
		states, err := d.States()
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]bool, len(states))
		for _, c := range states {
			if !cuts.Consistent(ex, c) {
				t.Fatalf("trial %d: enumerated inconsistent state %v", trial, c)
			}
			got[key(c)] = true
		}
		// Brute force over all frontier vectors of real positions.
		var want int
		var walk func(c cuts.Cut, i int)
		walk = func(c cuts.Cut, i int) {
			if i == ex.NumProcs() {
				if cuts.Consistent(ex, c) {
					want++
					if !got[key(c)] {
						t.Fatalf("trial %d: consistent state %v not enumerated", trial, c)
					}
				}
				return
			}
			for pos := 0; pos <= ex.NumReal(i); pos++ {
				c[i] = pos
				walk(c, i+1)
			}
			c[i] = 0
		}
		walk(cuts.Bottom(ex), 0)
		if want != len(states) {
			t.Fatalf("trial %d: %d enumerated, brute force %d", trial, len(states), want)
		}
	}
}

// twoFlags: two independent single-event processes.
func twoFlags(t *testing.T) *poset.Execution {
	t.Helper()
	b := poset.NewBuilder(2)
	b.Append(0)
	b.Append(1)
	return b.MustBuild()
}

func TestPossiblyDefinitelyClassic(t *testing.T) {
	ex := twoFlags(t)
	d := New(ex, 0)
	p0Only := func(c cuts.Cut) bool { return c[0] == 1 && c[1] == 0 }
	both := func(c cuts.Cut) bool { return c[0] == 1 && c[1] == 1 }
	neither := func(c cuts.Cut) bool { return c[0] == 0 && c[1] == 0 }

	if got, err := d.Possibly(p0Only); err != nil || !got {
		t.Errorf("Possibly(p0 only) = %v, %v; want true", got, err)
	}
	// Some observation does p1 first, skipping the p0-only state.
	if got, err := d.Definitely(p0Only); err != nil || got {
		t.Errorf("Definitely(p0 only) = %v, %v; want false", got, err)
	}
	// Every observation ends with both done and starts with neither.
	if got, err := d.Definitely(both); err != nil || !got {
		t.Errorf("Definitely(both) = %v, %v; want true", got, err)
	}
	if got, err := d.Definitely(neither); err != nil || !got {
		t.Errorf("Definitely(neither) = %v, %v; want true (initial state)", got, err)
	}
	if got, err := d.Possibly(func(c cuts.Cut) bool { return c[0] == 2 }); err != nil || got {
		t.Errorf("Possibly(impossible) = %v, %v; want false", got, err)
	}
}

// TestDefinitelyRequiresUnavoidable: with a message p0:1 → p1:1 the state
// "p0 done, p1 not started" is unavoidable (p1 cannot move first).
func TestDefinitelyRequiresUnavoidable(t *testing.T) {
	b := poset.NewBuilder(2)
	s := b.Append(0)
	rcv := b.Append(1)
	if err := b.Message(s, rcv); err != nil {
		t.Fatal(err)
	}
	ex := b.MustBuild()
	d := New(ex, 0)
	phi := func(c cuts.Cut) bool { return c[0] == 1 && c[1] == 0 }
	if got, err := d.Definitely(phi); err != nil || !got {
		t.Errorf("Definitely = %v, %v; want true (the send must come first)", got, err)
	}
}

// TestBridgeTheorems cross-validates the detector against the relation
// evaluators on random executions:
//
//	R1(X, Y)  ⟺ Definitely(allDone(X) ∧ noneStarted(Y))
//	¬R4(Y, X) ⟺ Possibly(allDone(X) ∧ noneStarted(Y))
func TestBridgeTheorems(t *testing.T) {
	r := rand.New(rand.NewSource(307))
	for trial := 0; trial < 60; trial++ {
		ex := posettest.Random(r, 2+r.Intn(3), 4+r.Intn(8), 0.5)
		xe, ye := posettest.DisjointIntervals(r, ex, 3)
		if xe == nil {
			continue
		}
		x := interval.MustNew(ex, xe)
		y := interval.MustNew(ex, ye)
		a := core.NewAnalysis(ex)
		fast := core.NewFast(a)
		d := New(ex, 0)
		phi := And(AllDone(x), NoneStarted(y))

		wantDef := fast.Eval(core.R1, x, y)
		gotDef, err := d.Definitely(phi)
		if err != nil {
			t.Fatal(err)
		}
		if gotDef != wantDef {
			t.Fatalf("trial %d: Definitely = %v but R1 = %v (X=%v Y=%v)", trial, gotDef, wantDef, x, y)
		}

		wantPos := !fast.Eval(core.R4, y, x)
		gotPos, err := d.Possibly(phi)
		if err != nil {
			t.Fatal(err)
		}
		if gotPos != wantPos {
			t.Fatalf("trial %d: Possibly = %v but ¬R4(Y,X) = %v (X=%v Y=%v)", trial, gotPos, wantPos, x, y)
		}
	}
}

func TestBudget(t *testing.T) {
	b := poset.NewBuilder(4)
	for p := 0; p < 4; p++ {
		b.AppendN(p, 4) // 5^4 = 625 states, all independent
	}
	ex := b.MustBuild()
	d := New(ex, 10)
	if _, err := d.States(); !errors.Is(err, ErrBudget) {
		t.Errorf("States err = %v, want ErrBudget", err)
	}
	if _, err := d.Possibly(func(cuts.Cut) bool { return false }); !errors.Is(err, ErrBudget) {
		t.Errorf("Possibly err = %v, want ErrBudget", err)
	}
	if _, err := d.Definitely(func(cuts.Cut) bool { return false }); !errors.Is(err, ErrBudget) {
		t.Errorf("Definitely err = %v, want ErrBudget", err)
	}
	// A generous budget succeeds: 625 states.
	if states, err := New(ex, 1000).States(); err != nil || len(states) != 625 {
		t.Errorf("states = %d, %v; want 625", len(states), err)
	}
}

func TestPredicateHelpers(t *testing.T) {
	ex := twoFlags(t)
	x := interval.MustNew(ex, []poset.EventID{{Proc: 0, Pos: 1}})
	y := interval.MustNew(ex, []poset.EventID{{Proc: 1, Pos: 1}})
	allX := AllDone(x)
	noneY := NoneStarted(y)
	if !allX(cuts.Cut{1, 0}) || allX(cuts.Cut{0, 1}) {
		t.Errorf("AllDone misbehaves")
	}
	if !noneY(cuts.Cut{1, 0}) || noneY(cuts.Cut{0, 1}) {
		t.Errorf("NoneStarted misbehaves")
	}
	conj := And(allX, noneY)
	if !conj(cuts.Cut{1, 0}) || conj(cuts.Cut{1, 1}) {
		t.Errorf("And misbehaves")
	}
}

// TestPossiblyEarlyExit: Possibly stops at the first satisfying state, so a
// tiny budget still succeeds when the initial state already matches.
func TestPossiblyEarlyExit(t *testing.T) {
	b := poset.NewBuilder(3)
	for p := 0; p < 3; p++ {
		b.AppendN(p, 5)
	}
	ex := b.MustBuild()
	d := New(ex, 4)
	got, err := d.Possibly(func(c cuts.Cut) bool { return true })
	if err != nil || !got {
		t.Errorf("Possibly(init) = %v, %v", got, err)
	}
}
