// Package detect implements global-predicate detection over the lattice of
// consistent global states (Cooper & Marzullo's Possibly/Definitely
// modalities) — the classical companion of the paper's Problem 4 and the
// substrate behind "distributed predicate specification" in its §1. It is
// built on the consistent-cut machinery of internal/cuts.
//
// A global state is a consistent cut, identified by its frontier vector.
// Possibly(φ) holds when some reachable global state satisfies φ;
// Definitely(φ) when every observation (every maximal path through the
// lattice from the initial to the final state) passes through a state
// satisfying φ.
//
// The lattice can be exponential in the execution size, so every walker
// takes an explicit state budget and fails loudly when it is exceeded; the
// intended use is testing and offline analysis of bounded traces.
//
// Two bridge theorems connect the modalities to the paper's relations, and
// the package tests verify both against the evaluators:
//
//	R1(X, Y)   ⟺  Definitely(allDone(X) ∧ noneStarted(Y))
//	¬R4(Y, X)  ⟺  Possibly(allDone(X) ∧ noneStarted(Y))
package detect

import (
	"errors"
	"fmt"

	"causet/internal/cuts"
	"causet/internal/interval"
	"causet/internal/poset"
	"causet/internal/vclock"
)

// Predicate evaluates a global state. The frontier has one component per
// process: the position of its latest executed event (0 = none yet). The
// slice is reused across calls; implementations must not retain it.
type Predicate func(frontier cuts.Cut) bool

// ErrBudget is returned when the lattice walk exceeds its state budget.
var ErrBudget = errors.New("detect: state budget exceeded")

// Detector walks the lattice of consistent global states of one execution.
type Detector struct {
	ex     *poset.Execution
	clk    *vclock.Clocks
	budget int
}

// New creates a detector with the given state budget (the maximum number of
// distinct global states any one query may visit; ≤ 0 means a default of
// one million).
func New(ex *poset.Execution, budget int) *Detector {
	if budget <= 0 {
		budget = 1_000_000
	}
	return &Detector{ex: ex, clk: vclock.New(ex), budget: budget}
}

// initial returns the empty global state.
func (d *Detector) initial() cuts.Cut { return cuts.Bottom(d.ex) }

// isFinal reports whether the state has executed every real event.
func (d *Detector) isFinal(c cuts.Cut) bool {
	for i, f := range c {
		if f != d.ex.NumReal(i) {
			return false
		}
	}
	return true
}

// succ appends the consistent successors of c (advance one process by one
// real event) to dst and returns it.
func (d *Detector) succ(c cuts.Cut, dst []cuts.Cut) []cuts.Cut {
	for i := range c {
		pos := c[i] + 1
		if pos > d.ex.NumReal(i) {
			continue
		}
		t := d.clk.T(poset.EventID{Proc: i, Pos: pos})
		ok := true
		for j := range c {
			if j != i && t[j] > c[j] {
				ok = false
				break
			}
		}
		if ok {
			next := c.Clone()
			next[i] = pos
			dst = append(dst, next)
		}
	}
	return dst
}

// key encodes a frontier for the visited set.
func key(c cuts.Cut) string {
	b := make([]byte, 0, len(c)*2)
	for _, f := range c {
		b = append(b, byte(f), byte(f>>8))
	}
	return string(b)
}

// States enumerates every consistent global state (BFS order). It errors
// when the lattice exceeds the budget.
func (d *Detector) States() ([]cuts.Cut, error) {
	var out []cuts.Cut
	err := d.walk(func(c cuts.Cut) bool { out = append(out, c); return false }, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Possibly reports whether some consistent global state satisfies pred.
func (d *Detector) Possibly(pred Predicate) (bool, error) {
	found := false
	err := d.walk(func(c cuts.Cut) bool {
		if pred(c) {
			found = true
			return true
		}
		return false
	}, nil)
	if err != nil {
		return false, err
	}
	return found, nil
}

// Definitely reports whether every observation of the execution passes
// through a state satisfying pred: equivalently, the final state is not
// reachable from the initial one through ¬pred states only.
func (d *Detector) Definitely(pred Predicate) (bool, error) {
	if pred(d.initial()) {
		return true, nil
	}
	finalAvoiding := false
	err := d.walk(func(c cuts.Cut) bool {
		if d.isFinal(c) {
			finalAvoiding = true
			return true
		}
		return false
	}, func(c cuts.Cut) bool { return pred(c) }) // prune states satisfying pred
	if err != nil {
		return false, err
	}
	return !finalAvoiding, nil
}

// walk runs a BFS over the lattice, calling visit on each state (stopping
// early when it returns true). States for which prune returns true are
// counted as visited but not expanded and not passed to visit — they are
// barriers. The budget bounds the visited set.
func (d *Detector) walk(visit func(cuts.Cut) bool, prune func(cuts.Cut) bool) error {
	start := d.initial()
	seen := map[string]bool{key(start): true}
	queue := []cuts.Cut{start}
	var scratch []cuts.Cut
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if prune != nil && prune(c) {
			continue
		}
		if visit(c) {
			return nil
		}
		scratch = d.succ(c, scratch[:0])
		for _, n := range scratch {
			k := key(n)
			if seen[k] {
				continue
			}
			if len(seen) >= d.budget {
				return fmt.Errorf("%w (%d states)", ErrBudget, d.budget)
			}
			seen[k] = true
			queue = append(queue, n)
		}
	}
	return nil
}

// AllDone returns a predicate satisfied when every event of the interval
// has executed.
func AllDone(x *interval.Interval) Predicate {
	events := x.Events()
	return func(c cuts.Cut) bool {
		for _, e := range events {
			if e.Pos > c[e.Proc] {
				return false
			}
		}
		return true
	}
}

// NoneStarted returns a predicate satisfied while no event of the interval
// has executed.
func NoneStarted(x *interval.Interval) Predicate {
	// Only the earliest member per node matters.
	least := x.PerNodeLeast()
	return func(c cuts.Cut) bool {
		for _, e := range least {
			if e.Pos <= c[e.Proc] {
				return false
			}
		}
		return true
	}
}

// And conjoins predicates.
func And(preds ...Predicate) Predicate {
	return func(c cuts.Cut) bool {
		for _, p := range preds {
			if !p(c) {
				return false
			}
		}
		return true
	}
}
