package faultsim

import (
	"fmt"
	"math/rand"
	"sort"

	"causet/internal/obs"
	"causet/internal/runtime"
)

// Sim is the deterministic cooperative scheduler plus fault-injecting
// transport. It implements runtime.Transport (Send/Recv/TryRecv) and
// provides the runtime.NodeWrapper that supports crash/restart.
//
// Concurrency model: the token. At any instant exactly one goroutine is
// active — either the scheduler loop or the single node it last resumed.
// Nodes hand the token back by sending on the parked channel and blocking on
// their resume channel; the scheduler hands it out by sending a resumeMsg.
// All Sim state (queues, statuses, the PRNG, counters) is owned by whichever
// goroutine holds the token, so there are no data races and no locks: the
// channel handoffs establish the happens-before edges. Because every random
// draw comes from the single seeded PRNG and is made in token order, the
// entire run — schedule picks, fault draws, reorder picks — is a pure
// function of (seed, plan, protocol config).
type Sim struct {
	n    int
	plan FaultPlan
	rng  *rand.Rand

	step int   // scheduler steps so far (one per dispatch or time advance)
	seq  int64 // monotone envelope sequence, the queue tiebreaker

	parked    chan parkMsg
	resume    []chan resumeMsg
	schedDone chan struct{}

	status         []nodeStatus
	queues         [][]pending
	crashPending   []bool
	restartAfterOf []int
	restartAt      []int
	incarnation    []int

	crashes  []Crash // plan crashes sorted by At
	crashIdx int     // next unfired crash

	partSpans []obs.Span // span per plan partition, valid while partOpen
	partOpen  []bool

	stats Stats
	met   simObs
	tr    *obs.Tracer
}

// Stats counts what the fault layer actually did during one run. All values
// are deterministic for a given (seed, plan, config).
type Stats struct {
	Steps          int64 // scheduler steps consumed
	Drops          int64 // messages discarded by DropProb
	Dups           int64 // messages duplicated by DupProb
	Delays         int64 // deliveries held back by DelayProb
	Reorders       int64 // receives that took a younger deliverable message
	PartitionDrops int64 // messages discarded by an active partition
	InboxLoss      int64 // messages lost to a crash (queued at crash time or sent to a down node)
	Crashes        int64 // crash faults applied
	Restarts       int64 // restarts performed
	Kills          int64 // nodes killed by deadlock sweep or step budget
	ProtoPanics    int64 // protocol bodies that panicked (treated as kills)
}

// simObs mirrors Stats into an obs.Registry; all fields may be nil.
type simObs struct {
	drops, dups, delays, reorders   *obs.Counter
	partitionDrops, inboxLoss       *obs.Counter
	crashes, restarts, kills, steps *obs.Counter
}

type nodeStatus int

const (
	stRunning   nodeStatus = iota // holds the token right now
	stRunnable                    // parked at a yield point
	stWantRecv                    // parked in blocking Recv
	stWantTry                     // parked in TryRecv
	stCrashWait                   // down, restarting at restartAt
	stDone                        // finished, killed, or crashed for good
)

type parkReason int

const (
	parkStart parkReason = iota
	parkYield
	parkRecv
	parkTry
	parkCrashWait
	parkDone
)

type resumeKind int

const (
	resumeRun     resumeKind = iota // keep running (also: restart approved)
	resumeDeliver                   // here is your message
	resumeEmpty                     // TryRecv: nothing deliverable
	resumeCrash                     // unwind: you crashed
	resumeKill                      // unwind: you are dead for good
)

type parkMsg struct {
	node int
	why  parkReason
}

type resumeMsg struct {
	kind resumeKind
	env  runtime.Envelope
}

// pending is one queued delivery.
type pending struct {
	env         runtime.Envelope
	availableAt int // first step at which it may be delivered
	seq         int64
}

// crashSignal and killSignal are the panic sentinels the transport throws to
// unwind a node; the wrapper's recover distinguishes them from real panics.
type crashSignal struct{}
type killSignal struct{}

// newSim builds a simulator for n nodes. Call Attach on the target system
// and start the scheduler with go s.schedule() before sys.Run.
func newSim(n int, seed int64, plan FaultPlan, reg *obs.Registry, tr *obs.Tracer) *Sim {
	s := &Sim{
		n:              n,
		plan:           plan,
		rng:            rand.New(rand.NewSource(seed)),
		parked:         make(chan parkMsg),
		resume:         make([]chan resumeMsg, n),
		schedDone:      make(chan struct{}),
		status:         make([]nodeStatus, n),
		queues:         make([][]pending, n),
		crashPending:   make([]bool, n),
		restartAfterOf: make([]int, n),
		restartAt:      make([]int, n),
		incarnation:    make([]int, n),
		partSpans:      make([]obs.Span, len(plan.Partitions)),
		partOpen:       make([]bool, len(plan.Partitions)),
		tr:             tr,
	}
	for i := range s.resume {
		s.resume[i] = make(chan resumeMsg)
		s.status[i] = stRunning // until the first parkStart arrives
	}
	s.crashes = append([]Crash(nil), plan.Crashes...)
	sort.SliceStable(s.crashes, func(i, j int) bool { return s.crashes[i].At < s.crashes[j].At })
	if reg != nil {
		s.met = simObs{
			drops:          reg.Counter("faultsim.drops"),
			dups:           reg.Counter("faultsim.dups"),
			delays:         reg.Counter("faultsim.delays"),
			reorders:       reg.Counter("faultsim.reorders"),
			partitionDrops: reg.Counter("faultsim.partition_drops"),
			inboxLoss:      reg.Counter("faultsim.inbox_loss"),
			crashes:        reg.Counter("faultsim.crashes"),
			restarts:       reg.Counter("faultsim.restarts"),
			kills:          reg.Counter("faultsim.kills"),
			steps:          reg.Counter("faultsim.steps"),
		}
	}
	return s
}

// Attach installs the simulator as the system's transport and node wrapper.
func (s *Sim) Attach(sys *runtime.System) {
	sys.SetTransport(s)
	sys.SetNodeWrapper(s.WrapNode)
}

// park hands the token to the scheduler and blocks until resumed.
func (s *Sim) park(node int, why parkReason) resumeMsg {
	s.parked <- parkMsg{node: node, why: why}
	return <-s.resume[node]
}

// Send implements runtime.Transport: apply send-side faults, enqueue
// surviving deliveries, then yield so the scheduler can interleave. Yielding
// at every communication point is enough for full poset-shape coverage:
// internal events commute with remote ones, so only the relative order of
// sends and receives shapes the recorded partial order.
func (s *Sim) Send(env runtime.Envelope) {
	s.deposit(env)
	switch r := s.park(env.From, parkYield); r.kind {
	case resumeRun:
	case resumeCrash:
		panic(crashSignal{})
	default:
		panic(killSignal{})
	}
}

// deposit applies drop/duplicate/delay/partition faults and enqueues the
// surviving copies. Runs on the sending node's goroutine, holding the token.
func (s *Sim) deposit(env runtime.Envelope) {
	to := env.To
	if s.crossPartition(env.From, to) {
		s.stats.PartitionDrops++
		s.met.partitionDrops.Add(1)
		return
	}
	if st := s.status[to]; st == stCrashWait || st == stDone {
		s.stats.InboxLoss++
		s.met.inboxLoss.Add(1)
		return
	}
	if s.plan.DropProb > 0 && s.rng.Float64() < s.plan.DropProb {
		s.stats.Drops++
		s.met.drops.Add(1)
		return
	}
	copies := 1
	if s.plan.DupProb > 0 && s.rng.Float64() < s.plan.DupProb {
		copies = 2
		s.stats.Dups++
		s.met.dups.Add(1)
	}
	for c := 0; c < copies; c++ {
		delay := 0
		if s.plan.DelayProb > 0 && s.rng.Float64() < s.plan.DelayProb {
			delay = 1 + s.rng.Intn(s.plan.MaxDelay)
			s.stats.Delays++
			s.met.delays.Add(1)
		}
		s.seq++
		s.queues[to] = append(s.queues[to], pending{env: env, availableAt: s.step + delay, seq: s.seq})
	}
}

// crossPartition reports whether an active partition separates from and to.
func (s *Sim) crossPartition(from, to int) bool {
	for _, p := range s.plan.Partitions {
		if p.active(s.step) && p.groupOf(from) != p.groupOf(to) {
			return true
		}
	}
	return false
}

// Recv implements runtime.Transport: block until the scheduler delivers.
func (s *Sim) Recv(node int) runtime.Envelope {
	switch r := s.park(node, parkRecv); r.kind {
	case resumeDeliver:
		return r.env
	case resumeCrash:
		panic(crashSignal{})
	default:
		panic(killSignal{})
	}
}

// TryRecv implements runtime.Transport: one scheduling point that either
// delivers or reports emptiness (advisory only — see runtime.Node.TryRecv).
func (s *Sim) TryRecv(node int) (runtime.Envelope, bool) {
	switch r := s.park(node, parkTry); r.kind {
	case resumeDeliver:
		return r.env, true
	case resumeEmpty:
		return runtime.Envelope{}, false
	case resumeCrash:
		panic(crashSignal{})
	default:
		panic(killSignal{})
	}
}

type outcome int

const (
	ocFinished outcome = iota
	ocCrashed
	ocKilled
	ocPanicked
)

// runBody executes the protocol body, converting sentinel unwinds into
// outcomes. A non-sentinel panic is a protocol bug surfaced by the fault
// schedule: it is counted and the node treated as killed so the run still
// terminates with an analyzable trace.
func (s *Sim) runBody(nd *runtime.Node, body func(*runtime.Node)) (oc outcome) {
	defer func() {
		switch recover().(type) {
		case nil:
		case crashSignal:
			oc = ocCrashed
		case killSignal:
			oc = ocKilled
		default:
			oc = ocPanicked
		}
	}()
	body(nd)
	return ocFinished
}

// WrapNode is the runtime.NodeWrapper: run the body, catch crash unwinds,
// record crash/restart internal events on the node's own process line, and
// rerun the body for each restarted incarnation. A crash that arrives before
// the body's first instruction still records its crash event and may restart.
func (s *Sim) WrapNode(nd *runtime.Node, body func(*runtime.Node)) {
	id := nd.ID()
	defer func() { s.parked <- parkMsg{node: id, why: parkDone} }()
	r := s.park(id, parkStart)
	for {
		if r.kind == resumeKill {
			return
		}
		if r.kind == resumeRun {
			switch s.runBody(nd, body) {
			case ocFinished, ocKilled:
				return
			case ocPanicked:
				s.stats.ProtoPanics++
				return
			case ocCrashed:
				// handled below
			}
		}
		nd.Internal(fmt.Sprintf("crash#%d", s.incarnation[id]))
		if s.restartAfterOf[id] < 0 {
			return
		}
		if rw := s.park(id, parkCrashWait); rw.kind != resumeRun {
			return // killed while down
		}
		s.incarnation[id]++
		nd.Internal(fmt.Sprintf("restart#%d", s.incarnation[id]))
		r = resumeMsg{kind: resumeRun}
	}
}

// schedule is the scheduler loop. Run it as a goroutine before sys.Run; it
// exits once every node is done, closing schedDone.
func (s *Sim) schedule() {
	defer close(s.schedDone)
	defer s.closePartitionSpans()
	for live := 0; live < s.n; live++ {
		s.handlePark(<-s.parked)
	}
	maxSteps := s.plan.maxSteps()
	for {
		if s.allDone() {
			s.stats.Steps = int64(s.step)
			s.met.steps.Add(s.stats.Steps)
			return
		}
		if s.step > maxSteps {
			s.killAll()
			continue
		}
		s.tickPartitionSpans()
		s.fireCrashes()
		cands := s.candidates()
		if len(cands) == 0 {
			if s.hasFuture() {
				s.step++ // advance time toward the next delivery/restart/crash
				continue
			}
			s.killAll() // genuine deadlock: unwind everyone, keep the trace
			continue
		}
		s.dispatch(cands[s.rng.Intn(len(cands))])
		s.step++
	}
}

// handlePark records a node's park state; runs on the scheduler goroutine.
func (s *Sim) handlePark(m parkMsg) {
	switch m.why {
	case parkStart, parkYield:
		s.status[m.node] = stRunnable
	case parkRecv:
		s.status[m.node] = stWantRecv
	case parkTry:
		s.status[m.node] = stWantTry
	case parkCrashWait:
		s.status[m.node] = stCrashWait
		s.restartAt[m.node] = s.step + s.restartAfterOf[m.node]
	case parkDone:
		s.status[m.node] = stDone
	}
}

// fireCrashes consumes every plan crash due at or before the current step.
// A crash aimed at a node that is already down or done is lost (the process
// cannot crash twice concurrently); consuming it regardless keeps hasFuture
// finite.
func (s *Sim) fireCrashes() {
	for s.crashIdx < len(s.crashes) && s.crashes[s.crashIdx].At <= s.step {
		c := s.crashes[s.crashIdx]
		s.crashIdx++
		if st := s.status[c.Node]; st == stDone || st == stCrashWait || s.crashPending[c.Node] {
			continue
		}
		s.crashPending[c.Node] = true
		s.restartAfterOf[c.Node] = c.RestartAfter
	}
}

// candidates lists dispatchable nodes in id order (determinism requires a
// fixed enumeration order before the PRNG pick).
func (s *Sim) candidates() []int {
	var cands []int
	for id := 0; id < s.n; id++ {
		switch s.status[id] {
		case stRunnable, stWantTry:
			cands = append(cands, id)
		case stWantRecv:
			if s.crashPending[id] || s.hasDeliverable(id) {
				cands = append(cands, id)
			}
		case stCrashWait:
			if s.restartAt[id] <= s.step {
				cands = append(cands, id)
			}
		}
	}
	return cands
}

// hasDeliverable reports whether node id has a message past its delay.
func (s *Sim) hasDeliverable(id int) bool {
	for _, p := range s.queues[id] {
		if p.availableAt <= s.step {
			return true
		}
	}
	return false
}

// hasFuture reports whether advancing the step counter could unblock
// anything: a delayed delivery, a scheduled restart, or an unfired crash
// aimed at a live node.
func (s *Sim) hasFuture() bool {
	for id := 0; id < s.n; id++ {
		if s.status[id] == stCrashWait {
			return true
		}
		if len(s.queues[id]) > 0 && s.status[id] != stDone {
			return true
		}
	}
	for _, c := range s.crashes[s.crashIdx:] {
		if s.status[c.Node] != stDone {
			return true
		}
	}
	return false
}

// dispatch resumes node id appropriately, then waits for its next park.
func (s *Sim) dispatch(id int) {
	switch {
	case s.crashPending[id] && s.status[id] != stCrashWait:
		s.crashPending[id] = false
		s.stats.InboxLoss += int64(len(s.queues[id]))
		s.met.inboxLoss.Add(int64(len(s.queues[id])))
		s.queues[id] = nil
		s.stats.Crashes++
		s.met.crashes.Add(1)
		s.status[id] = stRunning
		s.resume[id] <- resumeMsg{kind: resumeCrash}
	case s.status[id] == stCrashWait:
		s.stats.Restarts++
		s.met.restarts.Add(1)
		s.status[id] = stRunning
		s.resume[id] <- resumeMsg{kind: resumeRun}
	case s.status[id] == stRunnable:
		s.status[id] = stRunning
		s.resume[id] <- resumeMsg{kind: resumeRun}
	default: // stWantRecv or stWantTry
		idxs := s.deliverableIdxs(id)
		if len(idxs) == 0 { // only reachable for stWantTry
			s.status[id] = stRunning
			s.resume[id] <- resumeMsg{kind: resumeEmpty}
			break
		}
		pick := idxs[0] // oldest deliverable
		if len(idxs) > 1 && s.plan.ReorderProb > 0 && s.rng.Float64() < s.plan.ReorderProb {
			alt := idxs[s.rng.Intn(len(idxs))]
			if alt != pick {
				s.stats.Reorders++
				s.met.reorders.Add(1)
				pick = alt
			}
		}
		env := s.queues[id][pick].env
		s.queues[id] = append(s.queues[id][:pick], s.queues[id][pick+1:]...)
		s.status[id] = stRunning
		s.resume[id] <- resumeMsg{kind: resumeDeliver, env: env}
	}
	s.handlePark(<-s.parked)
}

// deliverableIdxs lists queue indexes whose delay has elapsed, in queue
// (i.e. sequence) order.
func (s *Sim) deliverableIdxs(id int) []int {
	var idxs []int
	for i, p := range s.queues[id] {
		if p.availableAt <= s.step {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// killAll unwinds every live node in id order; used on deadlock (every live
// node blocked with nothing in flight) and on step-budget exhaustion. The
// trace up to this point remains valid and analyzable.
func (s *Sim) killAll() {
	for id := 0; id < s.n; id++ {
		if s.status[id] == stDone {
			continue
		}
		s.stats.Kills++
		s.met.kills.Add(1)
		s.status[id] = stRunning
		s.resume[id] <- resumeMsg{kind: resumeKill}
		for {
			m := <-s.parked
			s.handlePark(m)
			if m.node == id && m.why == parkDone {
				break
			}
		}
	}
}

// allDone reports whether every node has finished.
func (s *Sim) allDone() bool {
	for _, st := range s.status {
		if st != stDone {
			return false
		}
	}
	return true
}

// tickPartitionSpans opens/closes one tracer span per partition window so
// the chaos schedule shows up on the trace timeline.
func (s *Sim) tickPartitionSpans() {
	if s.tr == nil {
		return
	}
	for i, p := range s.plan.Partitions {
		switch {
		case !s.partOpen[i] && p.active(s.step):
			s.partSpans[i] = s.tr.Begin("faultsim", fmt.Sprintf("partition-%d", i))
			s.partOpen[i] = true
		case s.partOpen[i] && !p.active(s.step):
			s.partSpans[i].End()
			s.partOpen[i] = false
		}
	}
}

// closePartitionSpans ends any partition span still open at run end.
func (s *Sim) closePartitionSpans() {
	for i := range s.partSpans {
		if s.partOpen[i] {
			s.partSpans[i].End()
			s.partOpen[i] = false
		}
	}
}
