package faultsim

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"causet/internal/obs"
)

// -seeds controls how many derived cases TestFaultsimExplore runs; CI raises
// it (go test ./internal/faultsim -seeds=64).
var seedsFlag = flag.Int("seeds", 12, "number of derived (config, plan) cases Explore checks")

// traceBytes renders a run's canonical trace JSON.
func traceBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.TraceFile().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestDeterministicTrace pins the core simulator guarantee: the same
// (config, seed, plan) produces byte-identical traces and identical fault
// statistics, run after run, for every protocol and a fault-heavy plan.
func TestDeterministicTrace(t *testing.T) {
	plan := FaultPlan{
		DropProb: 0.15, DupProb: 0.2, DelayProb: 0.4, MaxDelay: 5, ReorderProb: 0.6,
		Partitions: []Partition{{Start: 10, Heal: 30, Groups: [][]int{{0}}}},
		Crashes:    []Crash{{Node: 1, At: 25, RestartAfter: 8}},
	}
	for _, proto := range []Protocol{Mutex, Election, TwoPhase} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := Config{Protocol: proto, Nodes: 4, Rounds: 2, ProtoSeed: 7}
			first, err := Run(cfg, 42, plan, nil, nil)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			want := traceBytes(t, first)
			for rerun := 0; rerun < 2; rerun++ {
				again, err := Run(cfg, 42, plan, nil, nil)
				if err != nil {
					t.Fatalf("rerun %d: %v", rerun, err)
				}
				if got := traceBytes(t, again); !bytes.Equal(want, got) {
					t.Fatalf("rerun %d: trace differs (%d vs %d bytes)", rerun, len(want), len(got))
				}
				if again.Stats != first.Stats {
					t.Fatalf("rerun %d: stats differ: %+v vs %+v", rerun, again.Stats, first.Stats)
				}
			}
			// A different seed must explore a different schedule (astronomically
			// unlikely to collide on a byte-identical trace for these plans).
			other, err := Run(cfg, 43, plan, nil, nil)
			if err != nil {
				t.Fatalf("other seed: %v", err)
			}
			if bytes.Equal(want, traceBytes(t, other)) {
				t.Fatalf("seeds 42 and 43 produced identical traces; the PRNG is not steering the schedule")
			}
		})
	}
}

// TestFaultFreeRunCompletes pins that a zero plan leaves the protocols
// untouched: no faults counted, every protocol-level interval captured.
func TestFaultFreeRunCompletes(t *testing.T) {
	res, err := Run(Config{Protocol: Mutex, Nodes: 3, Rounds: 2, ProtoSeed: 1}, 5, FaultPlan{}, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := res.Stats
	if s.Drops+s.Dups+s.Delays+s.Reorders+s.PartitionDrops+s.InboxLoss+s.Crashes+s.Restarts+s.Kills+s.ProtoPanics != 0 {
		t.Fatalf("fault-free run counted faults: %+v", s)
	}
	if len(res.Intervals) != 6 { // 3 nodes × 2 entries
		t.Fatalf("want 6 critical-section intervals, got %d: %v", len(res.Intervals), res.Intervals)
	}
	for name, events := range res.Intervals {
		if len(events) != 2 {
			t.Fatalf("section %s has %d events, want enter+exit", name, len(events))
		}
	}
}

// TestDropsStarveAndKill pins the deadlock sweep: with every message
// dropped, the nodes block forever and the scheduler kills them all, still
// producing an analyzable trace.
func TestDropsStarveAndKill(t *testing.T) {
	res, err := Run(Config{Protocol: Mutex, Nodes: 3, Rounds: 1, ProtoSeed: 1}, 9, FaultPlan{DropProb: 1}, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Drops == 0 {
		t.Fatalf("DropProb=1 counted no drops: %+v", res.Stats)
	}
	if res.Stats.Kills != 3 {
		t.Fatalf("want all 3 nodes killed by the deadlock sweep, got %d kills: %+v", res.Stats.Kills, res.Stats)
	}
	if res.Exec == nil || res.Exec.NumProcs() != 3 {
		t.Fatalf("no usable trace after kill-all")
	}
}

// TestDuplicationCounted pins that DupProb=1 duplicates every delivery and
// the run still terminates (the protocols skip stray messages).
func TestDuplicationCounted(t *testing.T) {
	res, err := Run(Config{Protocol: TwoPhase, Nodes: 3, Rounds: 2, ProtoSeed: 3}, 11, FaultPlan{DupProb: 1}, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Dups == 0 {
		t.Fatalf("DupProb=1 counted no duplicates: %+v", res.Stats)
	}
}

// TestPartitionBlocksCrossTraffic pins the partition fault: during the
// window, cross-group messages are dropped and counted separately.
func TestPartitionBlocksCrossTraffic(t *testing.T) {
	plan := FaultPlan{Partitions: []Partition{{Start: 0, Heal: DefaultMaxSteps * 2, Groups: [][]int{{0}}}}}
	res, err := Run(Config{Protocol: Mutex, Nodes: 2, Rounds: 1, ProtoSeed: 1}, 13, plan, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.PartitionDrops == 0 {
		t.Fatalf("full partition counted no partition drops: %+v", res.Stats)
	}
	if res.Stats.Drops != 0 {
		t.Fatalf("partition drops leaked into the random-drop counter: %+v", res.Stats)
	}
	if res.Stats.Kills != 2 {
		t.Fatalf("fully partitioned mutex nodes must deadlock and be killed, got %+v", res.Stats)
	}
}

// TestCrashRestartRecorded pins crash/restart: the fault is applied, the
// node's process line carries crash#0 and restart#1 events, and queued
// messages are lost.
func TestCrashRestartRecorded(t *testing.T) {
	plan := FaultPlan{Crashes: []Crash{{Node: 1, At: 6, RestartAfter: 5}}}
	res, err := Run(Config{Protocol: Election, Nodes: 3, Rounds: 1, ProtoSeed: 2}, 17, plan, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Crashes != 1 || res.Stats.Restarts != 1 {
		t.Fatalf("want 1 crash + 1 restart, got %+v", res.Stats)
	}
	var sawCrash, sawRestart bool
	for e, label := range res.Labels {
		if e.Proc != 1 {
			continue
		}
		switch label {
		case "crash#0":
			sawCrash = true
		case "restart#1":
			sawRestart = true
		}
	}
	if !sawCrash || !sawRestart {
		t.Fatalf("crash/restart events missing from the trace (crash=%v restart=%v)", sawCrash, sawRestart)
	}
}

// TestCrashWithoutRestart pins that RestartAfter < 0 keeps the node down.
func TestCrashWithoutRestart(t *testing.T) {
	plan := FaultPlan{Crashes: []Crash{{Node: 0, At: 4, RestartAfter: -1}}}
	res, err := Run(Config{Protocol: Mutex, Nodes: 3, Rounds: 1, ProtoSeed: 1}, 19, plan, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Crashes != 1 || res.Stats.Restarts != 0 {
		t.Fatalf("want 1 crash and no restarts, got %+v", res.Stats)
	}
}

// TestObsCountersMirrorStats pins that the faultsim.* registry counters
// match the returned Stats.
func TestObsCountersMirrorStats(t *testing.T) {
	reg := obs.New()
	plan := FaultPlan{DropProb: 0.5, DupProb: 0.5}
	res, err := Run(Config{Protocol: TwoPhase, Nodes: 3, Rounds: 2, ProtoSeed: 5}, 23, plan, reg, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for name, want := range map[string]int64{
		"faultsim.drops": res.Stats.Drops,
		"faultsim.dups":  res.Stats.Dups,
		"faultsim.steps": res.Stats.Steps,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, stats say %d", name, got, want)
		}
	}
}

// TestParseSpec pins the CLI chaos-spec grammar.
func TestParseSpec(t *testing.T) {
	cfg, seed, plan, err := ParseSpec("mutex,nodes=4,rounds=3,seed=7,drop=0.1,dup=0.2,delay=0.3,maxdelay=6,reorder=0.4,maxsteps=5000,crash=1@20+30,crash=2@50")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if cfg.Protocol != Mutex || cfg.Nodes != 4 || cfg.Rounds != 3 || seed != 7 {
		t.Fatalf("bad config: %+v seed=%d", cfg, seed)
	}
	if plan.DropProb != 0.1 || plan.DupProb != 0.2 || plan.DelayProb != 0.3 ||
		plan.MaxDelay != 6 || plan.ReorderProb != 0.4 || plan.MaxSteps != 5000 {
		t.Fatalf("bad plan: %+v", plan)
	}
	if len(plan.Crashes) != 2 ||
		plan.Crashes[0] != (Crash{Node: 1, At: 20, RestartAfter: 30}) ||
		plan.Crashes[1] != (Crash{Node: 2, At: 50, RestartAfter: -1}) {
		t.Fatalf("bad crashes: %+v", plan.Crashes)
	}

	for _, bad := range []string{
		"",
		"raft,nodes=3",
		"mutex,nodes=1",
		"mutex,drop=1.5",
		"mutex,crash=9@5",
		"mutex,bogus=1",
		"mutex,crash=oops",
	} {
		if _, _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", bad)
		}
	}
}

// TestTraceFromSpec pins the -faults engine: the spec runs, yields named
// intervals, and is deterministic.
func TestTraceFromSpec(t *testing.T) {
	const spec = "twophase,nodes=3,rounds=2,seed=5,dup=0.3,reorder=0.5"
	f1, err := TraceFromSpec(spec, nil, nil)
	if err != nil {
		t.Fatalf("TraceFromSpec: %v", err)
	}
	if len(f1.IntervalNames()) == 0 {
		t.Fatalf("spec trace has no named intervals")
	}
	f2, err := TraceFromSpec(spec, nil, nil)
	if err != nil {
		t.Fatalf("TraceFromSpec rerun: %v", err)
	}
	var b1, b2 bytes.Buffer
	if err := f1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := f2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("TraceFromSpec is not deterministic")
	}
}

// TestFaultsimExplore is the property harness entry point: -seeds cases,
// each a random protocol under a random fault plan, each asserting the full
// cross-evaluator and online/offline invariant set.
func TestFaultsimExplore(t *testing.T) {
	Explore(t, ExploreOptions{Seeds: *seedsFlag})
}

// TestInjectedDupClockMergeBugCaught is the acceptance test for the harness
// itself: seed a deliberate bug (duplicate deliveries recorded without their
// vector-clock merge) and assert the property check finds it and shrinks it
// to a case that still duplicates messages.
func TestInjectedDupClockMergeBugCaught(t *testing.T) {
	buggy := CheckOptions{buggyDupClockMerge: true}
	var (
		foundSeed int64 = -1
		foundCfg  Config
		foundPlan FaultPlan
		foundErr  error
	)
	for seed := int64(0); seed < 60; seed++ {
		cfg, plan := DeriveCase(seed)
		if plan.DupProb == 0 {
			plan.DupProb = 0.6 // the bug only triggers on duplicated deliveries
		}
		if err := buggy.CheckRun(cfg, seed, plan); err != nil {
			foundSeed, foundCfg, foundPlan, foundErr = seed, cfg, plan, err
			break
		}
	}
	if foundSeed < 0 {
		t.Fatalf("injected duplicate-clock-merge bug survived 60 seeds undetected")
	}
	if !strings.Contains(foundErr.Error(), "divergence") {
		t.Logf("note: bug surfaced as %v (not a verdict divergence)", foundErr)
	}

	minCfg, minPlan, minErr := Shrink(foundCfg, foundSeed, foundPlan, buggy, 120)
	if minErr == nil {
		t.Fatalf("shrunk case no longer fails — Shrink accepted a passing reduction")
	}
	if minPlan.DupProb == 0 {
		t.Fatalf("shrunk plan lost DupProb, but the bug needs duplicates: %+v", minPlan)
	}
	// The shrunk case must not be larger than the original.
	if minCfg.Nodes > foundCfg.Nodes || minCfg.Rounds > foundCfg.Rounds {
		t.Fatalf("shrink grew the case: %+v -> %+v", foundCfg, minCfg)
	}
	if repro := ReproCommand(foundSeed, minCfg, minPlan); !strings.Contains(repro, "TestFaultsimExplore/seed=") {
		t.Fatalf("repro command malformed: %s", repro)
	}
	// And the clean harness must pass the very same shrunk case: the failure
	// is the seeded bug, not a latent defect in the evaluators.
	if err := (CheckOptions{}).CheckRun(minCfg, foundSeed, minPlan); err != nil {
		t.Fatalf("clean harness fails the shrunk case — a real defect, not the seeded bug: %v", err)
	}
}
