package faultsim

import (
	"fmt"
	"testing"
)

// ExploreOptions tunes the property-exploration loop.
type ExploreOptions struct {
	// Seeds is the number of derived (config, plan) cases to run; each gets
	// its own subtest named seed=N. 0 means 16.
	Seeds int
	// FirstSeed offsets the seed range (useful to sweep disjoint ranges
	// across CI shards).
	FirstSeed int64
	// Check overrides the harness options (zero value = defaults).
	Check CheckOptions
	// ShrinkBudget caps how many candidate runs a failing case may spend
	// shrinking. 0 means 120.
	ShrinkBudget int
}

func (o ExploreOptions) seeds() int {
	if o.Seeds <= 0 {
		return 16
	}
	return o.Seeds
}

func (o ExploreOptions) shrinkBudget() int {
	if o.ShrinkBudget <= 0 {
		return 120
	}
	return o.ShrinkBudget
}

// Explore is the property-based simulation harness: for each seed it derives
// a random protocol configuration and fault plan (DeriveCase), runs the
// protocol under the deterministic simulator, and asserts the
// cross-evaluator and online/offline invariants (CheckRun). A failing seed
// is automatically shrunk to a minimal still-failing (config, plan) and
// reported with a ready-to-paste reproduction command.
func Explore(t *testing.T, opts ExploreOptions) {
	t.Helper()
	for i := 0; i < opts.seeds(); i++ {
		seed := opts.FirstSeed + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg, plan := DeriveCase(seed)
			err := opts.Check.CheckRun(cfg, seed, plan)
			if err == nil {
				return
			}
			minCfg, minPlan, minErr := Shrink(cfg, seed, plan, opts.Check, opts.shrinkBudget())
			t.Fatalf("seed %d: %v\nshrunk to: %v\nshrunk failure: %v\nrepro: %s",
				seed, err, describeCase(minCfg, minPlan), minErr, ReproCommand(seed, minCfg, minPlan))
		})
	}
}

// Shrink greedily reduces a failing (cfg, plan): each candidate reduction is
// accepted only if the property still fails under it (re-verified by a full
// CheckRun, so the shrunk case is itself a reproduction). Returns the
// smallest case found and its failure.
func Shrink(cfg Config, seed int64, plan FaultPlan, opts CheckOptions, budget int) (Config, FaultPlan, error) {
	lastErr := opts.CheckRun(cfg, seed, plan)
	if lastErr == nil {
		return cfg, plan, nil // not failing; nothing to shrink
	}
	for improved := true; improved && budget > 0; {
		improved = false
		for _, cand := range shrinkCandidates(cfg, plan) {
			if budget <= 0 {
				break
			}
			budget--
			if err := opts.CheckRun(cand.cfg, seed, cand.plan); err != nil {
				cfg, plan, lastErr = cand.cfg, cand.plan, err
				improved = true
				break // restart from the new, smaller case
			}
		}
	}
	return cfg, plan, lastErr
}

type shrinkCand struct {
	cfg  Config
	plan FaultPlan
}

// shrinkCandidates proposes reductions, most aggressive first: remove whole
// fault dimensions, then whole schedule entries, then halve magnitudes, then
// shrink the protocol itself.
func shrinkCandidates(cfg Config, plan FaultPlan) []shrinkCand {
	var out []shrinkCand
	add := func(c Config, p FaultPlan) { out = append(out, shrinkCand{cfg: c, plan: p}) }

	if plan.DropProb > 0 {
		p := plan
		p.DropProb = 0
		add(cfg, p)
	}
	if plan.DupProb > 0 {
		p := plan
		p.DupProb = 0
		add(cfg, p)
	}
	if plan.DelayProb > 0 {
		p := plan
		p.DelayProb, p.MaxDelay = 0, 0
		add(cfg, p)
	}
	if plan.ReorderProb > 0 {
		p := plan
		p.ReorderProb = 0
		add(cfg, p)
	}
	if len(plan.Partitions) > 0 {
		p := plan
		p.Partitions = nil
		add(cfg, p)
	}
	if len(plan.Crashes) > 0 {
		p := plan
		p.Crashes = nil
		add(cfg, p)
	}
	for i := range plan.Crashes {
		p := plan
		p.Crashes = append(append([]Crash(nil), plan.Crashes[:i]...), plan.Crashes[i+1:]...)
		add(cfg, p)
	}
	for _, half := range []func(*FaultPlan){
		func(p *FaultPlan) { p.DropProb /= 2 },
		func(p *FaultPlan) { p.DupProb /= 2 },
		func(p *FaultPlan) { p.DelayProb /= 2 },
		func(p *FaultPlan) { p.ReorderProb /= 2 },
	} {
		p := plan
		half(&p)
		if scalarsOf(p) != scalarsOf(plan) { // only if it actually changed
			add(cfg, p)
		}
	}
	if plan.MaxDelay > 1 {
		p := plan
		p.MaxDelay /= 2
		add(cfg, p)
	}
	if cfg.Rounds > 1 {
		c := cfg
		c.Rounds--
		add(c, plan)
	}
	if cfg.Nodes > 2 {
		c := cfg
		c.Nodes--
		add(c, dropOutOfRange(plan, c.Nodes))
	}
	return out
}

// planScalars is the comparable projection of a plan's scalar fields, used
// to detect whether a halving candidate actually changed anything.
type planScalars struct {
	drop, dup, delay, reorder float64
	maxDelay                  int
}

func scalarsOf(p FaultPlan) planScalars {
	return planScalars{p.DropProb, p.DupProb, p.DelayProb, p.ReorderProb, p.MaxDelay}
}

// dropOutOfRange removes schedule entries that name nodes a smaller system
// no longer has, keeping the reduced plan valid.
func dropOutOfRange(plan FaultPlan, n int) FaultPlan {
	p := plan
	p.Crashes = nil
	for _, c := range plan.Crashes {
		if c.Node < n {
			p.Crashes = append(p.Crashes, c)
		}
	}
	p.Partitions = nil
	for _, part := range plan.Partitions {
		kept := Partition{Start: part.Start, Heal: part.Heal}
		for _, g := range part.Groups {
			var nodes []int
			for _, nd := range g {
				if nd < n {
					nodes = append(nodes, nd)
				}
			}
			if len(nodes) > 0 {
				kept.Groups = append(kept.Groups, nodes)
			}
		}
		if len(kept.Groups) > 0 {
			p.Partitions = append(p.Partitions, kept)
		}
	}
	return p
}

// describeCase renders a case compactly for failure messages.
func describeCase(cfg Config, plan FaultPlan) string {
	return fmt.Sprintf("%s nodes=%d rounds=%d protoseed=%d plan=%+v",
		cfg.Protocol, cfg.Nodes, cfg.Rounds, cfg.ProtoSeed, plan)
}

// ReproCommand renders a ready-to-paste command that reruns a failing case.
// The seed subtest fully determines the derived case, so the command only
// needs the seed; the shrunk plan is included as a Go literal for direct use
// with CheckRun when the derived case is larger than the shrunk one.
func ReproCommand(seed int64, cfg Config, plan FaultPlan) string {
	return fmt.Sprintf(
		"go test ./internal/faultsim -run 'TestFaultsimExplore/seed=%d$' -seeds=%d\n"+
			"or directly: faultsim.CheckRun(%#v, %d, %#v)",
		seed, seed+1, cfg, seed, plan)
}
