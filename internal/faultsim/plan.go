// Package faultsim is the deterministic fault-injection and simulation-test
// layer of the repository. It wraps the live runtime (internal/runtime)
// behind a cooperative scheduler and a fault-injecting transport, so that a
// protocol run under a given (seed, FaultPlan) pair is fully deterministic —
// byte-identical traces across runs — while exercising the adversarial
// delivery behaviors a real network exhibits: per-message delay, drop,
// duplication, reordering, N-way partitions with heal, and node
// crash/restart with inbox loss.
//
// Determinism argument (DESIGN §S22 carries the full version): exactly one
// goroutine — the scheduler or the single running node — is active at any
// instant, with handoffs over unbuffered channels; every random draw
// (schedule picks, fault draws, reorder picks) comes from one seeded PRNG
// consumed only by the active goroutine; and node code itself is
// deterministic given its message sequence. The recorded poset is therefore
// a pure function of (protocol config, seed, plan).
//
// On top of the simulator, the package provides a property harness
// (CheckRun/Explore) that asserts the repository's cross-evaluator
// invariants on every adversarial execution — Naive ≡ Proxy ≡ Fast ≡ Fused
// on sampled interval pairs, Theorem 19/20 comparison bounds, and online
// monitor verdicts equal to offline replay verdicts — with greedy shrinking
// of failing cases to a minimal (config, plan) printed as a reproducible
// `go test -run` command.
package faultsim

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Partition isolates node groups for a window of scheduler steps: from step
// Start (inclusive) to step Heal (exclusive), messages between different
// groups are dropped. Nodes not listed in any group form one implicit
// "rest" group of their own, so a single listed group partitions it from
// everyone else.
type Partition struct {
	Start, Heal int
	Groups      [][]int
}

// groupOf returns the partition group index of a node; unlisted nodes share
// the implicit group len(Groups).
func (p Partition) groupOf(node int) int {
	for g, nodes := range p.Groups {
		for _, n := range nodes {
			if n == node {
				return g
			}
		}
	}
	return len(p.Groups)
}

// active reports whether the partition covers scheduler step s.
func (p Partition) active(s int) bool { return s >= p.Start && s < p.Heal }

// Crash schedules node Node to crash at scheduler step At: its queued
// messages are discarded (inbox loss), its protocol body is unwound, and —
// when RestartAfter is non-negative — the body restarts from scratch
// RestartAfter steps later (volatile protocol state lost, process identity
// and trace prefix kept). RestartAfter < 0 means the node stays down.
type Crash struct {
	Node, At     int
	RestartAfter int
}

// FaultPlan is a deterministic schedule of adversity. The zero value is the
// fault-free plan (the cooperative scheduler still controls interleavings).
type FaultPlan struct {
	DropProb    float64 // per message: silently discard
	DupProb     float64 // per message: deliver twice (independent delays)
	DelayProb   float64 // per delivery: hold for 1..MaxDelay steps
	MaxDelay    int     // maximum hold in steps (only with DelayProb > 0)
	ReorderProb float64 // per receive: pick a random deliverable message instead of the oldest

	Partitions []Partition
	Crashes    []Crash

	// MaxSteps bounds the scheduler; past it every live node is killed and
	// the run ends with whatever trace exists. 0 means the 20000 default.
	MaxSteps int
}

// DefaultMaxSteps bounds runs whose plan leaves MaxSteps zero.
const DefaultMaxSteps = 20000

// maxSteps resolves the step budget.
func (p FaultPlan) maxSteps() int {
	if p.MaxSteps <= 0 {
		return DefaultMaxSteps
	}
	return p.MaxSteps
}

// Validate checks the plan against a system of n nodes.
func (p FaultPlan) Validate(n int) error {
	for _, prob := range []struct {
		name string
		v    float64
	}{
		{"DropProb", p.DropProb}, {"DupProb", p.DupProb},
		{"DelayProb", p.DelayProb}, {"ReorderProb", p.ReorderProb},
	} {
		if prob.v < 0 || prob.v > 1 {
			return fmt.Errorf("faultsim: %s = %v out of [0, 1]", prob.name, prob.v)
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faultsim: MaxDelay = %d is negative", p.MaxDelay)
	}
	if p.DelayProb > 0 && p.MaxDelay == 0 {
		return fmt.Errorf("faultsim: DelayProb > 0 needs MaxDelay ≥ 1")
	}
	for i, part := range p.Partitions {
		if part.Start < 0 || part.Heal <= part.Start {
			return fmt.Errorf("faultsim: partition %d window [%d, %d) is empty or negative", i, part.Start, part.Heal)
		}
		for _, g := range part.Groups {
			for _, nd := range g {
				if nd < 0 || nd >= n {
					return fmt.Errorf("faultsim: partition %d names node %d of %d", i, nd, n)
				}
			}
		}
	}
	for i, c := range p.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("faultsim: crash %d names node %d of %d", i, c.Node, n)
		}
		if c.At < 0 {
			return fmt.Errorf("faultsim: crash %d at negative step %d", i, c.At)
		}
	}
	return nil
}

// DeriveCase expands a bare seed into a protocol configuration and a fault
// plan — the generator behind Explore. The same seed always yields the same
// case, so a failing seed is itself a complete reproduction key.
func DeriveCase(seed int64) (Config, FaultPlan) {
	r := rand.New(rand.NewSource(seed))
	protos := []Protocol{Mutex, Election, TwoPhase}
	cfg := Config{
		Protocol:  protos[r.Intn(len(protos))],
		Nodes:     2 + r.Intn(4),
		Rounds:    1 + r.Intn(3),
		ProtoSeed: int64(r.Intn(1 << 16)),
	}
	plan := FaultPlan{}
	if r.Float64() < 0.6 {
		plan.DropProb = 0.25 * r.Float64()
	}
	if r.Float64() < 0.6 {
		plan.DupProb = 0.3 * r.Float64()
	}
	if r.Float64() < 0.6 {
		plan.DelayProb = 0.5 * r.Float64()
		plan.MaxDelay = 1 + r.Intn(8)
	}
	if r.Float64() < 0.6 {
		plan.ReorderProb = r.Float64()
	}
	if r.Float64() < 0.3 {
		start := r.Intn(40)
		// Split the nodes into two halves; the second half is the implicit
		// rest group.
		var left []int
		for nd := 0; nd < cfg.Nodes/2; nd++ {
			left = append(left, nd)
		}
		plan.Partitions = append(plan.Partitions, Partition{
			Start:  start,
			Heal:   start + 10 + r.Intn(40),
			Groups: [][]int{left},
		})
	}
	for i, k := 0, r.Intn(3); i < k; i++ {
		c := Crash{Node: r.Intn(cfg.Nodes), At: r.Intn(80), RestartAfter: -1}
		if r.Float64() < 0.5 {
			c.RestartAfter = 5 + r.Intn(20)
		}
		plan.Crashes = append(plan.Crashes, c)
	}
	return cfg, plan
}

// ParseSpec parses the CLI chaos specification used by relcheck/syncmon
// -faults: a comma-separated list whose first item is the protocol name and
// whose remaining items are key=value pairs:
//
//	mutex,nodes=4,rounds=3,seed=7,drop=0.1,dup=0.1,delay=0.2,maxdelay=4,reorder=0.3,crash=1@20+30,crash=2@50
//
// crash=N@S kills node N at step S; a +R suffix restarts it R steps later.
func ParseSpec(spec string) (Config, int64, FaultPlan, error) {
	var (
		cfg  Config
		seed int64
		plan FaultPlan
	)
	parts := strings.Split(spec, ",")
	if len(parts) == 0 || parts[0] == "" {
		return cfg, 0, plan, fmt.Errorf("faultsim: empty spec")
	}
	cfg.Protocol = Protocol(strings.TrimSpace(parts[0]))
	cfg.Nodes, cfg.Rounds = 3, 2
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, 0, plan, fmt.Errorf("faultsim: spec item %q is not key=value", kv)
		}
		var err error
		switch key {
		case "nodes":
			cfg.Nodes, err = strconv.Atoi(val)
		case "rounds":
			cfg.Rounds, err = strconv.Atoi(val)
		case "protoseed":
			cfg.ProtoSeed, err = strconv.ParseInt(val, 10, 64)
		case "seed":
			seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			plan.DropProb, err = strconv.ParseFloat(val, 64)
		case "dup":
			plan.DupProb, err = strconv.ParseFloat(val, 64)
		case "delay":
			plan.DelayProb, err = strconv.ParseFloat(val, 64)
			if err == nil && plan.MaxDelay == 0 {
				plan.MaxDelay = 4
			}
		case "maxdelay":
			plan.MaxDelay, err = strconv.Atoi(val)
		case "reorder":
			plan.ReorderProb, err = strconv.ParseFloat(val, 64)
		case "maxsteps":
			plan.MaxSteps, err = strconv.Atoi(val)
		case "crash":
			var c Crash
			c, err = parseCrash(val)
			plan.Crashes = append(plan.Crashes, c)
		default:
			return cfg, 0, plan, fmt.Errorf("faultsim: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, 0, plan, fmt.Errorf("faultsim: spec %s=%s: %v", key, val, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, 0, plan, err
	}
	if err := plan.Validate(cfg.Nodes); err != nil {
		return cfg, 0, plan, err
	}
	return cfg, seed, plan, nil
}

// parseCrash parses "N@S" or "N@S+R".
func parseCrash(val string) (Crash, error) {
	c := Crash{RestartAfter: -1}
	nodeS, rest, ok := strings.Cut(val, "@")
	if !ok {
		return c, fmt.Errorf("want N@S or N@S+R")
	}
	atS, restartS, hasRestart := strings.Cut(rest, "+")
	var err error
	if c.Node, err = strconv.Atoi(nodeS); err != nil {
		return c, err
	}
	if c.At, err = strconv.Atoi(atS); err != nil {
		return c, err
	}
	if hasRestart {
		if c.RestartAfter, err = strconv.Atoi(restartS); err != nil {
			return c, err
		}
	}
	return c, nil
}
