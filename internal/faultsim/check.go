package faultsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"causet/internal/core"
	"causet/internal/interval"
	"causet/internal/monitor"
	"causet/internal/online"
	"causet/internal/poset"
)

// CheckOptions tunes the property harness.
type CheckOptions struct {
	// PairSamples is the number of extra random disjoint event-subset pairs
	// checked on top of the protocol-level interval pairs. 0 means 4.
	PairSamples int

	// NamedPairs caps the protocol-level interval pairs checked per run
	// (there can be dozens on a busy mutex trace). 0 means 6.
	NamedPairs int

	// buggyDupClockMerge injects a deliberate bug into the online replay: a
	// receiver-side "dedup" that records every delivery of a duplicated
	// message as a local event, skipping the vector-clock merge and losing
	// the causal edge. (Skipping only the second copy would be causally
	// invisible — both copies land on the same process, so the first merge
	// is inherited locally; the realistic failure mode is dedup logic that
	// swallows the message before the monitor sees its edge at all.) The
	// harness exists to catch exactly this class of mistake — the acceptance
	// test seeds it and asserts the property check finds and shrinks it.
	buggyDupClockMerge bool
}

func (o CheckOptions) pairSamples() int {
	if o.PairSamples <= 0 {
		return 4
	}
	return o.PairSamples
}

func (o CheckOptions) namedPairs() int {
	if o.NamedPairs <= 0 {
		return 6
	}
	return o.NamedPairs
}

// CheckRun executes cfg under (seed, plan) and asserts every cross-evaluator
// invariant the repository promises, end to end, on the adversarial trace:
//
//  1. Determinism: a second run yields a byte-identical trace file.
//  2. Naive ≡ Proxy ≡ Fast on every sampled disjoint interval pair, for all
//     eight relations of Table 1.
//  3. The fused 32-relation profile kernel agrees with the per-relation scan.
//  4. Fast comparison counts respect the Theorem 19/20 bounds.
//  5. Online monitor verdicts (conditions settled while replaying the trace
//     into a Stream) equal offline monitor verdicts on the full execution.
//
// A nil error means all invariants hold for this (cfg, seed, plan).
func CheckRun(cfg Config, seed int64, plan FaultPlan) error {
	return CheckOptions{}.CheckRun(cfg, seed, plan)
}

// CheckRun is the option-carrying form of the package-level CheckRun.
func (o CheckOptions) CheckRun(cfg Config, seed int64, plan FaultPlan) error {
	res, err := Run(cfg, seed, plan, nil, nil)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	res2, err := Run(cfg, seed, plan, nil, nil)
	if err != nil {
		return fmt.Errorf("rerun: %w", err)
	}
	b1, b2 := new(bytes.Buffer), new(bytes.Buffer)
	if err := res.TraceFile().WriteJSON(b1); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	if err := res2.TraceFile().WriteJSON(b2); err != nil {
		return fmt.Errorf("serialize rerun: %w", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		return fmt.Errorf("determinism: two runs of the same (seed, plan) produced different traces (%d vs %d bytes)", b1.Len(), b2.Len())
	}

	ex := res.Exec
	pairs, err := o.samplePairs(ex, res.Intervals, seed)
	if err != nil {
		return err
	}
	if err := o.checkEvaluators(ex, pairs); err != nil {
		return err
	}
	return o.checkOnline(ex, pairs)
}

// ivPair is one sampled disjoint interval pair.
type ivPair struct {
	name   string
	x, y   *interval.Interval
	xe, ye []poset.EventID
}

// samplePairs assembles the disjoint interval pairs to check: protocol-level
// named intervals (critical sections, vote/decide/apply, candidacy/win/learn)
// paired in deterministic name order, plus random disjoint event subsets.
func (o CheckOptions) samplePairs(ex *poset.Execution, named map[string][]poset.EventID, seed int64) ([]ivPair, error) {
	names := make([]string, 0, len(named))
	for n := range named {
		names = append(names, n)
	}
	sort.Strings(names)

	ivs := make(map[string]*interval.Interval, len(names))
	for _, n := range names {
		iv, err := interval.New(ex, named[n])
		if err != nil {
			// Protocol intervals are captured from real recorded events;
			// a rejection means the capture logic is broken — a finding,
			// not a skip.
			return nil, fmt.Errorf("interval %q: %w", n, err)
		}
		ivs[n] = iv
	}

	var pairs []ivPair
	for i := 0; i < len(names) && len(pairs) < o.namedPairs(); i++ {
		for j := i + 1; j < len(names) && len(pairs) < o.namedPairs(); j++ {
			x, y := ivs[names[i]], ivs[names[j]]
			if x.Overlaps(y) {
				continue
			}
			pairs = append(pairs, ivPair{
				name: names[i] + "/" + names[j],
				x:    x, y: y,
				xe: named[names[i]], ye: named[names[j]],
			})
		}
	}

	// Random disjoint subsets exercise shapes the protocols never produce.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed5a17))
	events := ex.LinearExtension()
	for k := 0; k < o.pairSamples(); k++ {
		nx, ny := 1+rng.Intn(3), 1+rng.Intn(3)
		if nx+ny > len(events) {
			break
		}
		perm := rng.Perm(len(events))
		xe := make([]poset.EventID, 0, nx)
		ye := make([]poset.EventID, 0, ny)
		for _, idx := range perm[:nx] {
			xe = append(xe, events[idx])
		}
		for _, idx := range perm[nx : nx+ny] {
			ye = append(ye, events[idx])
		}
		x, err := interval.New(ex, xe)
		if err != nil {
			return nil, fmt.Errorf("random interval: %w", err)
		}
		y, err := interval.New(ex, ye)
		if err != nil {
			return nil, fmt.Errorf("random interval: %w", err)
		}
		pairs = append(pairs, ivPair{name: fmt.Sprintf("rand-%d", k), x: x, y: y, xe: xe, ye: ye})
	}
	return pairs, nil
}

// checkEvaluators asserts Naive ≡ Proxy ≡ Fast ≡ Fused and the comparison
// bounds on every sampled pair.
func (o CheckOptions) checkEvaluators(ex *poset.Execution, pairs []ivPair) error {
	a := core.NewAnalysis(ex)
	naive, proxy, fast := core.NewNaive(a), core.NewProxy(a), core.NewFast(a)
	for _, pr := range pairs {
		for _, rel := range core.Relations() {
			vn, err := a.EvalChecked(naive, rel, pr.x, pr.y)
			if err != nil {
				return fmt.Errorf("pair %s: naive %s: %w", pr.name, rel, err)
			}
			vp, err := a.EvalChecked(proxy, rel, pr.x, pr.y)
			if err != nil {
				return fmt.Errorf("pair %s: proxy %s: %w", pr.name, rel, err)
			}
			vf, err := a.EvalChecked(fast, rel, pr.x, pr.y)
			if err != nil {
				return fmt.Errorf("pair %s: fast %s: %w", pr.name, rel, err)
			}
			if vn != vp || vn != vf {
				return fmt.Errorf("pair %s: %s disagreement: naive=%v proxy=%v fast=%v", pr.name, rel, vn, vp, vf)
			}
			_, cnt := fast.EvalCount(rel, pr.x, pr.y)
			if bound := rel.ComplexityBound(pr.x.NodeCount(), pr.y.NodeCount()); cnt > int64(bound) {
				return fmt.Errorf("pair %s: %s used %d comparisons, Theorem 19/20 bound is %d", pr.name, rel, cnt, bound)
			}
		}
		mask, _ := a.EvalProfile(pr.x, pr.y)
		fused := core.MaskHolding(mask)
		scan := a.HoldingRel32(fast, pr.x, pr.y)
		if len(fused) != len(scan) {
			return fmt.Errorf("pair %s: fused kernel holds %d relations, scan holds %d", pr.name, len(fused), len(scan))
		}
		for i := range fused {
			if fused[i] != scan[i] {
				return fmt.Errorf("pair %s: fused kernel and scan diverge at %d: %v vs %v", pr.name, i, fused[i], scan[i])
			}
		}
	}
	return nil
}

// checkOnline replays the trace into an online Stream while driving an
// online Monitor, then compares every settled verdict with the offline
// monitor's verdict on the full execution. Under the (test-only) injected
// duplicate-clock-merge bug the replay records duplicated deliveries without
// their causal edges, which is exactly the divergence this check catches.
// olCond is one named DSL condition shared by the online checks.
type olCond struct{ name, src string }

func (o CheckOptions) checkOnline(ex *poset.Execution, pairs []ivPair) error {
	if len(pairs) == 0 {
		return nil
	}

	// Offline ground truth.
	off := monitor.New(ex)
	var conds []olCond
	for i, pr := range pairs {
		xn, yn := fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i)
		if err := off.Define(xn, pr.xe); err != nil {
			return fmt.Errorf("offline define %s (%s): %w", xn, pr.name, err)
		}
		if err := off.Define(yn, pr.ye); err != nil {
			return fmt.Errorf("offline define %s (%s): %w", yn, pr.name, err)
		}
		for _, rel := range core.Relations() {
			c := olCond{
				name: fmt.Sprintf("c%d_%s", i, rel),
				src:  fmt.Sprintf("%s(%s, %s)", rel, xn, yn),
			}
			conds = append(conds, c)
			if err := off.AddCondition(c.name, c.src); err != nil {
				return fmt.Errorf("offline condition %s: %w", c.name, err)
			}
		}
	}
	offline := make(map[string]monitor.State, len(conds))
	for _, r := range off.Check() {
		if r.State == monitor.Failed {
			return fmt.Errorf("offline condition %s failed: %v", r.Name, r.Err)
		}
		offline[r.Name] = r.State
	}

	// Online: membership index so the replay hook can grow/complete the
	// monitor's intervals in lockstep with the stream.
	memberOf := make(map[poset.EventID][]string)
	remaining := make(map[string]int, 2*len(pairs))
	for i, pr := range pairs {
		for _, e := range pr.xe {
			memberOf[e] = append(memberOf[e], fmt.Sprintf("x%d", i))
		}
		for _, e := range pr.ye {
			memberOf[e] = append(memberOf[e], fmt.Sprintf("y%d", i))
		}
		remaining[fmt.Sprintf("x%d", i)] = len(pr.xe)
		remaining[fmt.Sprintf("y%d", i)] = len(pr.ye)
	}

	var mon *online.Monitor
	feed := func(s *online.Stream, e poset.EventID) error {
		if mon == nil {
			mon = online.NewMonitor(s)
			for _, c := range conds {
				if err := mon.AddCondition(c.name, c.src); err != nil {
					return fmt.Errorf("online condition %s: %w", c.name, err)
				}
			}
		}
		for _, name := range memberOf[e] {
			if err := mon.Observe(name, e); err != nil {
				return fmt.Errorf("online observe %s: %w", name, err)
			}
			remaining[name]--
			if remaining[name] == 0 {
				if err := mon.Complete(name); err != nil {
					return fmt.Errorf("online complete %s: %w", name, err)
				}
				mon.Check() // settle whatever just became evaluable
			}
		}
		return nil
	}

	var err error
	if o.buggyDupClockMerge {
		err = o.replayBuggy(ex, feed)
	} else {
		_, err = online.ReplaySteps(ex, feed)
	}
	if err != nil {
		return fmt.Errorf("online replay: %w", err)
	}
	if mon == nil {
		return fmt.Errorf("online replay fed no events")
	}
	for _, r := range mon.Check() {
		want, ok := offline[r.Name]
		if !ok {
			return fmt.Errorf("online settled unknown condition %s", r.Name)
		}
		if r.State != want {
			return fmt.Errorf("verdict divergence on %s: online=%s offline=%s", r.Name, r.State, want)
		}
	}
	if o.buggyDupClockMerge {
		return nil
	}
	return checkOnlineRetained(ex, pairs, conds, offline)
}

// checkOnlineRetained re-runs the online check under an aggressive retention
// policy — settled intervals released almost immediately, the stream
// compacted every few events — and demands the same verdicts as the offline
// oracle. Fault plans reorder and duplicate deliveries, so the replay pins
// in-flight sends; this is the chaos-side leg of the compaction-agreement
// differential.
func checkOnlineRetained(ex *poset.Execution, pairs []ivPair, conds []olCond, offline map[string]monitor.State) error {
	memberOf := make(map[poset.EventID][]string)
	remaining := make(map[string]int, 2*len(pairs))
	for i, pr := range pairs {
		for _, e := range pr.xe {
			memberOf[e] = append(memberOf[e], fmt.Sprintf("x%d", i))
		}
		for _, e := range pr.ye {
			memberOf[e] = append(memberOf[e], fmt.Sprintf("y%d", i))
		}
		remaining[fmt.Sprintf("x%d", i)] = len(pr.xe)
		remaining[fmt.Sprintf("y%d", i)] = len(pr.ye)
	}
	s := online.NewStream(ex.NumProcs())
	mon := online.NewMonitor(s)
	if err := mon.SetRetention(online.RetentionPolicy{MaxEvents: 16, Every: 4, DropSettled: true}); err != nil {
		return fmt.Errorf("retained online: %w", err)
	}
	for _, c := range conds {
		if err := mon.AddCondition(c.name, c.src); err != nil {
			return fmt.Errorf("retained online condition %s: %w", c.name, err)
		}
	}
	settled := make(map[string]monitor.State, len(conds))
	drain := func() {
		for _, r := range mon.Poll() {
			settled[r.Name] = r.State
		}
	}
	if _, err := online.ReplayStepsPinned(s, ex, func(_ *online.Stream, e poset.EventID) error {
		for _, name := range memberOf[e] {
			if err := mon.Observe(name, e); err != nil {
				return fmt.Errorf("retained observe %s: %w", name, err)
			}
			remaining[name]--
			if remaining[name] == 0 {
				if err := mon.Complete(name); err != nil {
					return fmt.Errorf("retained complete %s: %w", name, err)
				}
			}
		}
		drain()
		return nil
	}); err != nil {
		return fmt.Errorf("retained online replay: %w", err)
	}
	drain()
	if len(settled) != len(conds) {
		return fmt.Errorf("retained online settled %d of %d conditions", len(settled), len(conds))
	}
	for name, st := range settled {
		want, ok := offline[name]
		if !ok {
			return fmt.Errorf("retained online settled unknown condition %s", name)
		}
		if st != want {
			return fmt.Errorf("retained verdict divergence on %s: online=%s offline=%s", name, st, want)
		}
	}
	return nil
}

// replayBuggy mirrors online.ReplaySteps except for the seeded bug: every
// delivery of a message that was delivered more than once (a duplicated
// send) is recorded as a local event — the causal edge and the clock merge
// silently vanish, as they would under dedup logic that swallows duplicated
// messages before the monitor records them.
func (o CheckOptions) replayBuggy(ex *poset.Execution, feed func(*online.Stream, poset.EventID) error) error {
	s := online.NewStream(ex.NumProcs())
	sendFor := make(map[poset.EventID]poset.EventID, len(ex.Messages()))
	copies := make(map[poset.EventID]int)
	for _, m := range ex.Messages() {
		sendFor[m.To] = m.From
		copies[m.From]++
	}
	for _, e := range ex.LinearExtension() {
		from, isRecv := sendFor[e]
		switch {
		case isRecv && copies[from] > 1:
			// THE BUG: duplicated message recorded without its edge.
			if _, err := s.Local(e.Proc); err != nil {
				return err
			}
		case isRecv:
			if _, err := s.Recv(e.Proc, from); err != nil {
				return err
			}
		default:
			if _, err := s.Local(e.Proc); err != nil {
				return err
			}
		}
		if err := feed(s, e); err != nil {
			return err
		}
	}
	return nil
}
