package faultsim

import (
	"fmt"

	"causet/internal/obs"
	"causet/internal/obs/flight"
	"causet/internal/poset"
	"causet/internal/runtime"
	"causet/internal/trace"
)

// Protocol names a runnable distributed protocol from internal/runtime.
type Protocol string

const (
	Mutex    Protocol = "mutex"    // Ricart–Agrawala mutual exclusion
	Election Protocol = "election" // Chang–Roberts ring election
	TwoPhase Protocol = "twophase" // two-phase commit (node 0 coordinates)
)

// Config selects a protocol run to put under the fault schedule.
type Config struct {
	Protocol Protocol
	Nodes    int // total nodes (twophase: participants + the coordinator)
	Rounds   int // mutex entries per node / election reruns (=1) / 2PC transactions
	// ProtoSeed feeds the protocol's own randomness (election identifier
	// permutation, 2PC vote coin flips), independent of the fault seed.
	ProtoSeed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Protocol {
	case Mutex, Election, TwoPhase:
	default:
		return fmt.Errorf("faultsim: unknown protocol %q (want mutex, election, or twophase)", c.Protocol)
	}
	if c.Nodes < 2 {
		return fmt.Errorf("faultsim: %d nodes; every protocol needs ≥ 2", c.Nodes)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("faultsim: %d rounds; need ≥ 1", c.Rounds)
	}
	return nil
}

// Result is one simulated run: the recorded poset, its labels, the named
// protocol-level intervals (nonatomic events: critical sections, vote/decide
// /apply groups, candidacy/win/learn groups), and the fault statistics.
type Result struct {
	Exec      *poset.Execution
	Labels    map[poset.EventID]string
	Intervals map[string][]poset.EventID
	Stats     Stats
}

// TraceFile packages the run as a self-describing trace file (canonical
// form: built by trace.New, so two byte-identical runs serialize to
// byte-identical JSON).
func (r *Result) TraceFile() *trace.File {
	return trace.New(r.Exec, r.Intervals)
}

// Run executes cfg under the fault plan with the given simulation seed and
// returns the recorded result. reg and tr (either may be nil) receive the
// faultsim.* counters and partition spans alongside the usual runtime
// instrumentation. The returned result is a deterministic function of
// (cfg, seed, plan).
func Run(cfg Config, seed int64, plan FaultPlan, reg *obs.Registry, tr *obs.Tracer) (*Result, error) {
	return RunFlight(cfg, seed, plan, reg, tr, nil)
}

// RunFlight is Run with a violation flight recorder attached to the
// runtime: every simulated event lands in fr's ring buffer with its live
// vector clock, so a caller that detects a violation afterwards can dump
// the causal black box (fr may be nil, making this identical to Run).
func RunFlight(cfg Config, seed int64, plan FaultPlan, reg *obs.Registry, tr *obs.Tracer, fr *flight.Recorder) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(cfg.Nodes); err != nil {
		return nil, err
	}
	sys := runtime.NewSystem(cfg.Nodes, 1) // inboxes unused: the sim transports
	sys.Instrument(reg, tr)
	sys.SetFlightRecorder(fr)
	sim := newSim(cfg.Nodes, seed, plan, reg, tr)
	sim.Attach(sys)
	go sim.schedule()

	res := &Result{Intervals: make(map[string][]poset.EventID)}
	var err error
	switch cfg.Protocol {
	case Mutex:
		var mr *runtime.MutexResult
		mr, err = runtime.RunMutexOn(sys, cfg.Rounds)
		if err == nil {
			res.Exec, res.Labels = mr.Exec, mr.Labels
			perNode := make(map[int]int)
			for _, sec := range mr.Sections {
				k := perNode[sec.Node]
				perNode[sec.Node]++
				addInterval(res, fmt.Sprintf("cs-n%d-e%d", sec.Node, k), sec.Enter, sec.Exit)
			}
		}
	case Election:
		var er *runtime.ElectionResult
		er, err = runtime.RunElectionOn(sys, cfg.ProtoSeed)
		if err == nil {
			res.Exec, res.Labels = er.Exec, er.Labels
			addInterval(res, "candidacy", er.Candidacies...)
			addInterval(res, "win", er.Win)
			addInterval(res, "learn", er.Learns...)
		}
	case TwoPhase:
		var tr2 *runtime.TwoPhaseResult
		tr2, err = runtime.RunTwoPhaseCommitOn(sys, cfg.Rounds, 0.8, cfg.ProtoSeed)
		if err == nil {
			res.Exec, res.Labels = tr2.Exec, tr2.Labels
			for _, txn := range tr2.Txns {
				addInterval(res, fmt.Sprintf("vote-%d", txn.Txn), txn.Votes...)
				addInterval(res, fmt.Sprintf("decide-%d", txn.Txn), txn.Decide)
				addInterval(res, fmt.Sprintf("apply-%d", txn.Txn), txn.Applies...)
			}
		}
	}
	<-sim.schedDone // the trace and stats are final only after the scheduler exits
	if err != nil {
		return nil, err
	}
	res.Stats = sim.stats
	return res, nil
}

// addInterval records a named event group, dropping zero EventIDs (events a
// crashed/killed node never reached — EventID{} is never a real event) and
// omitting groups that end up empty.
func addInterval(res *Result, name string, events ...poset.EventID) {
	var kept []poset.EventID
	seen := make(map[poset.EventID]bool)
	for _, e := range events {
		if (e != poset.EventID{}) && !seen[e] {
			seen[e] = true
			kept = append(kept, e)
		}
	}
	if len(kept) > 0 {
		res.Intervals[name] = kept
	}
}

// TraceFromSpec runs the chaos spec (see ParseSpec) and returns the
// resulting trace file — the engine behind the relcheck/syncmon -faults
// flags. reg and tr may be nil.
func TraceFromSpec(spec string, reg *obs.Registry, tr *obs.Tracer) (*trace.File, error) {
	return TraceFromSpecFlight(spec, reg, tr, nil)
}

// TraceFromSpecFlight is TraceFromSpec with a flight recorder capturing the
// simulated run (fr may be nil).
func TraceFromSpecFlight(spec string, reg *obs.Registry, tr *obs.Tracer, fr *flight.Recorder) (*trace.File, error) {
	cfg, seed, plan, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	res, err := RunFlight(cfg, seed, plan, reg, tr, fr)
	if err != nil {
		return nil, err
	}
	return res.TraceFile(), nil
}
