package render

import (
	"strings"
	"testing"

	"causet/internal/core"
	"causet/internal/cuts"
	"causet/internal/interval"
	"causet/internal/poset"
	"causet/internal/poset/posettest"
)

func tiny(t *testing.T) *poset.Execution {
	t.Helper()
	b := poset.NewBuilder(2)
	s := b.Append(0)
	r := b.Append(1)
	if err := b.Message(s, r); err != nil {
		t.Fatal(err)
	}
	b.Append(0)
	return b.MustBuild()
}

func TestRenderGolden(t *testing.T) {
	ex := tiny(t)
	d := New(ex).
		Mark([]poset.EventID{{Proc: 0, Pos: 1}}, '*').
		AddCut("C", cuts.FromEvents(ex, []poset.EventID{{Proc: 0, Pos: 1}}))
	got := d.Render()
	want := strings.Join([]string{
		"p0  ⊥  *1 .2 ⊤",
		"C:     ^",
		"p1  ⊥  .1 ⊤",
		"C:  ^",
		"messages: p0:1→p1:1",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// markerColumn returns the rune column of '^' in a marker line, or -1.
func markerColumn(line string) int {
	for i, r := range []rune(line) {
		if r == '^' {
			return i
		}
	}
	return -1
}

// checkAlignment verifies that every cut's '^' markers sit exactly at the
// rendered column of the cut's surface event on each timeline.
func checkAlignment(t *testing.T, d *Diagram, ex *poset.Execution, named map[string]cuts.Cut, out string) {
	t.Helper()
	lines := strings.Split(out, "\n")
	li := 0
	for p := 0; p < ex.NumProcs(); p++ {
		if !strings.Contains(lines[li], "⊥") {
			t.Fatalf("line %d is not a timeline: %q", li, lines[li])
		}
		li++
		for i := 0; i < len(named); i++ {
			line := lines[li]
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				t.Fatalf("marker line %d lacks a label: %q", li, line)
			}
			name := strings.TrimSpace(line[:colon])
			c, ok := named[name]
			if !ok {
				t.Fatalf("unknown cut label %q", name)
			}
			wantCol := d.ColumnOf(poset.EventID{Proc: p, Pos: c[p]})
			if got := markerColumn(line); got != wantCol {
				t.Errorf("cut %q proc %d: marker at col %d, want %d (line %q)", name, p, got, wantCol, line)
			}
			li++
		}
	}
}

// TestFigure2Cuts is experiment F2: reconstruct the Figure 2 poset (4 nodes,
// 8 X-events) and render the surfaces of the four cuts of Table 2. The four
// surfaces must be pairwise distinct (as in the published figure) and each
// marker must align with the cut's frontier.
func TestFigure2Cuts(t *testing.T) {
	ex, xEvents := posettest.Figure2()
	a := core.NewAnalysis(ex)
	x := interval.MustNew(ex, xEvents)
	ic := a.Cuts(x)

	named := map[string]cuts.Cut{
		"C1": ic.InterDown,
		"C2": ic.UnionDown,
		"C3": ic.InterUp,
		"C4": ic.UnionUp,
	}
	// The figure shows four distinct cuts.
	for n1, c1 := range named {
		for n2, c2 := range named {
			if n1 < n2 && c1.Equal(c2) {
				t.Errorf("cuts %s and %s coincide (%v); fixture no longer matches Figure 2", n1, n2, c1)
			}
		}
	}
	// And the containment C1 ⊆ C2, C3 ⊆ C4, C1 ⊆ C3 the figure depicts.
	if !ic.InterDown.Subset(ic.UnionDown) || !ic.InterUp.Subset(ic.UnionUp) || !ic.InterDown.Subset(ic.InterUp) {
		t.Errorf("cut containments violated: C1=%v C2=%v C3=%v C4=%v",
			ic.InterDown, ic.UnionDown, ic.InterUp, ic.UnionUp)
	}

	d := New(ex).Mark(xEvents, '*')
	d.AddCut("C1", ic.InterDown).AddCut("C2", ic.UnionDown).
		AddCut("C3", ic.InterUp).AddCut("C4", ic.UnionUp)
	out := d.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("X members not marked:\n%s", out)
	}
	checkAlignment(t, d, ex, named, out)
	wantLines := ex.NumProcs()*(1+len(named)) + 1 + 1 // timelines+markers, messages, trailing
	if got := len(strings.Split(out, "\n")); got != wantLines {
		t.Errorf("rendered %d lines, want %d:\n%s", got, wantLines, out)
	}
}

// TestFigure1Proxies is experiment F1: two poset events X and Y with their
// proxies L/U marked, as in Figure 1.
func TestFigure1Proxies(t *testing.T) {
	ex, xEvents := posettest.Figure2()
	x := interval.MustNew(ex, xEvents)
	lx := x.Proxy(interval.ProxyL, interval.DefPerNode, nil)
	ux := x.Proxy(interval.ProxyU, interval.DefPerNode, nil)

	d := New(ex).Mark(xEvents, 'x').Mark(lx, 'L').Mark(ux, 'U')
	out := d.Render()
	// Each node of N_X shows exactly one L and one U (the fixture has two
	// X events per node, so the proxies never coincide).
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "⊥") {
			continue
		}
		if got := strings.Count(line, "L"); got != 1 {
			t.Errorf("timeline %q has %d L-marks, want 1", line, got)
		}
		if got := strings.Count(line, "U"); got != 1 {
			t.Errorf("timeline %q has %d U-marks, want 1", line, got)
		}
	}
	// Later marks override earlier ones: no 'x' may remain on the 2-event
	// nodes... the fixture has exactly 2 X events per node, so all are
	// proxies and no plain 'x' remains.
	if strings.Contains(out, "x") {
		t.Errorf("unexpected non-proxy X member in:\n%s", out)
	}
}

// TestFigure3ProxyCuts is experiment F3: the cuts of the proxies relate to
// the cuts of X exactly as the construction promises — C1/C3 of X are the
// C1/C3 of L_X, and C2/C4 of X are the C2/C4 of U_X (the paper computes
// them from per-node extrema for precisely this reason).
func TestFigure3ProxyCuts(t *testing.T) {
	ex, xEvents := posettest.Figure2()
	a := core.NewAnalysis(ex)
	x := interval.MustNew(ex, xEvents)
	lx, err := x.ProxyInterval(interval.ProxyL, interval.DefPerNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	ux, err := x.ProxyInterval(interval.ProxyU, interval.DefPerNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	cx, cl, cu := a.Cuts(x), a.Cuts(lx), a.Cuts(ux)
	if !cx.InterDown.Equal(cl.InterDown) || !cx.InterUp.Equal(cl.InterUp) {
		t.Errorf("C1/C3 of X differ from those of L_X")
	}
	if !cx.UnionDown.Equal(cu.UnionDown) || !cx.UnionUp.Equal(cu.UnionUp) {
		t.Errorf("C2/C4 of X differ from those of U_X")
	}
	// Render both proxies' full cut sets, as Figure 3 does.
	d := New(ex).
		Mark(lx.Events(), 'L').Mark(ux.Events(), 'U').
		AddCut("L1", cl.InterDown).AddCut("L2", cl.UnionDown).
		AddCut("L3", cl.InterUp).AddCut("L4", cl.UnionUp).
		AddCut("U1", cu.InterDown).AddCut("U2", cu.UnionDown).
		AddCut("U3", cu.InterUp).AddCut("U4", cu.UnionUp)
	out := d.Render()
	named := map[string]cuts.Cut{
		"L1": cl.InterDown, "L2": cl.UnionDown, "L3": cl.InterUp, "L4": cl.UnionUp,
		"U1": cu.InterDown, "U2": cu.UnionDown, "U3": cu.InterUp, "U4": cu.UnionUp,
	}
	checkAlignment(t, d, ex, named, out)
}

func TestRenderPanics(t *testing.T) {
	ex := tiny(t)
	for _, fn := range []func(){
		func() { New(ex).Mark([]poset.EventID{ex.Bottom(0)}, '*') },
		func() { New(ex).Mark([]poset.EventID{{Proc: 9, Pos: 1}}, '*') },
		func() { New(ex).AddCut("bad", cuts.Cut{0}) }, // wrong arity
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRenderWithoutDecorations(t *testing.T) {
	ex := tiny(t)
	out := New(ex).Render()
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p1") {
		t.Errorf("missing timelines:\n%s", out)
	}
	if strings.Contains(out, "^") {
		t.Errorf("marker without cuts:\n%s", out)
	}
}

func TestRenderManyProcsAlignment(t *testing.T) {
	// Two-digit process indices and positions must stay aligned.
	b := poset.NewBuilder(12)
	for p := 0; p < 12; p++ {
		b.AppendN(p, 11)
	}
	ex := b.MustBuild()
	c := cuts.Full(ex)
	d := New(ex).AddCut("F", c)
	out := d.Render()
	named := map[string]cuts.Cut{"F": c}
	checkAlignment(t, d, ex, named, out)
}
