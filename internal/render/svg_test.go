package render

import (
	"strings"
	"testing"

	"causet/internal/core"
	"causet/internal/interval"
	"causet/internal/poset"
	"causet/internal/poset/posettest"
)

func TestSVGWellFormed(t *testing.T) {
	ex, xEvents := posettest.Figure2()
	a := core.NewAnalysis(ex)
	x := interval.MustNew(ex, xEvents)
	ic := a.Cuts(x)
	svg := NewSVG(ex).Mark(xEvents).
		AddCut("C1", ic.InterDown).AddCut("C2", ic.UnionDown).
		AddCut("C3", ic.InterUp).AddCut("C4", ic.UnionUp)
	out := svg.Render()

	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatalf("not an SVG document")
	}
	// One circle per real event; marked ones shaded.
	if got := strings.Count(out, "<circle "); got != ex.NumEvents() {
		t.Errorf("circles = %d, want %d", got, ex.NumEvents())
	}
	if got := strings.Count(out, `fill="#444"`); got != len(xEvents) {
		t.Errorf("shaded circles = %d, want %d", got, len(xEvents))
	}
	// One arrowed line per message plus one plain line per process.
	if got := strings.Count(out, "marker-end"); got != len(ex.Messages()) {
		t.Errorf("message arrows = %d, want %d", got, len(ex.Messages()))
	}
	// One dashed polyline + label per cut.
	if got := strings.Count(out, "<polyline "); got != 4 {
		t.Errorf("cut polylines = %d, want 4", got)
	}
	for _, name := range []string{"C1", "C2", "C3", "C4"} {
		if !strings.Contains(out, ">"+name+"<") {
			t.Errorf("cut label %s missing", name)
		}
	}
	// Balanced tags (rudimentary well-formedness).
	for _, tag := range []string{"svg", "defs", "marker"} {
		open := strings.Count(out, "<"+tag)
		closed := strings.Count(out, "</"+tag+">")
		if open != closed {
			t.Errorf("tag %s: %d open, %d closed", tag, open, closed)
		}
	}
}

func TestSVGLabelsAndEscape(t *testing.T) {
	b := poset.NewBuilder(2)
	e := b.Append(0)
	b.Append(1)
	ex := b.MustBuild()
	out := NewSVG(ex).Label(e, "a<b&c").Render()
	if !strings.Contains(out, "a&lt;b&amp;c") {
		t.Errorf("label not escaped:\n%s", out)
	}
	if strings.Contains(out, "a<b&c") {
		t.Errorf("raw label leaked")
	}
}

func TestSVGPanics(t *testing.T) {
	b := poset.NewBuilder(2)
	b.Append(0)
	ex := b.MustBuild()
	for _, fn := range []func(){
		func() { NewSVG(ex).Mark([]poset.EventID{ex.Bottom(0)}) },
		func() { NewSVG(ex).Label(ex.Top(1), "x") },
		func() { NewSVG(ex).AddCut("bad", []int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSVGSortedMarked(t *testing.T) {
	b := poset.NewBuilder(2)
	e1 := b.Append(0)
	e2 := b.Append(1)
	e3 := b.Append(0)
	ex := b.MustBuild()
	svg := NewSVG(ex).Mark([]poset.EventID{e3, e2, e1})
	got := svg.SortedMarked()
	if len(got) != 3 || got[0] != e1 || got[1] != e3 || got[2] != e2 {
		t.Errorf("SortedMarked = %v", got)
	}
}
