// Package render draws ASCII space-time diagrams of executions: one timeline
// per process with position-numbered events, optional per-event markers
// (interval membership, proxies), cut-surface markers beneath each timeline,
// and the message list. It reproduces the information content of the paper's
// Figures 1–3 — poset events, their proxies, and the surfaces of the cuts
// C1(X)–C4(X) — in a form that golden tests can pin.
//
// Layout example (one cut named "∩⇓X" registered):
//
//	  p0  ⊥  .1 *2 .3 ⊤
//	∩⇓X:        ^
//	  p1  ⊥  *1 .2 ⊤
//	∩⇓X:     ^
//	messages: p0:2→p1:1
//
// The ^ sits under the latest event of the cut on that timeline (the cut's
// surface event at that node); it sits under ⊥ when the cut contains
// nothing real there.
package render

import (
	"fmt"
	"strings"

	"causet/internal/cuts"
	"causet/internal/poset"
)

// Diagram accumulates an execution plus decorations and renders them.
type Diagram struct {
	ex      *poset.Execution
	markers map[poset.EventID]byte
	cuts    []namedCut
}

type namedCut struct {
	name string
	c    cuts.Cut
}

// New creates an empty diagram for ex. Real events render as '.' until
// marked.
func New(ex *poset.Execution) *Diagram {
	return &Diagram{ex: ex, markers: make(map[poset.EventID]byte)}
}

// Mark sets the marker character for the given events (e.g. '*' for the
// members of a nonatomic event, 'L'/'U' for proxies). Later marks override
// earlier ones. Invalid or dummy events panic: decorations address real
// events only.
func (d *Diagram) Mark(events []poset.EventID, marker byte) *Diagram {
	for _, e := range events {
		if !d.ex.IsReal(e) {
			panic(fmt.Sprintf("render: Mark of non-real event %v", e))
		}
		d.markers[e] = marker
	}
	return d
}

// AddCut registers a cut to draw. Cuts render in registration order, one
// marker line per cut per process. The cut must have one component per
// process of the execution.
func (d *Diagram) AddCut(name string, c cuts.Cut) *Diagram {
	if len(c) != d.ex.NumProcs() {
		panic(fmt.Sprintf("render: cut %q has %d components for %d processes", name, len(c), d.ex.NumProcs()))
	}
	d.cuts = append(d.cuts, namedCut{name: name, c: c})
	return d
}

// Render produces the diagram.
func (d *Diagram) Render() string {
	var b strings.Builder
	cw := d.cellWidth()
	// The left gutter holds either the process label ("p3") or a cut label
	// ("∩⇓X:"), right-aligned; size it to the widest, in display runes.
	gut := 1 + len(fmt.Sprint(d.ex.NumProcs()-1))
	for _, nc := range d.cuts {
		if w := len([]rune(nc.name)) + 1; w > gut {
			gut = w
		}
	}

	writeGutter := func(label string) {
		pad := gut - len([]rune(label))
		if pad > 0 {
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString(label)
		b.WriteString("  ")
	}

	for p := 0; p < d.ex.NumProcs(); p++ {
		writeGutter(fmt.Sprintf("p%d", p))
		for pos := 0; pos <= d.ex.TopPos(p); pos++ {
			b.WriteString(d.cell(poset.EventID{Proc: p, Pos: pos}, cw))
		}
		b.WriteByte('\n')
		// One surface-marker row per cut: '^' under the frontier cell.
		for _, nc := range d.cuts {
			writeGutter(nc.name + ":")
			b.WriteString(strings.Repeat(" ", nc.c[p]*(cw+1)))
			b.WriteByte('^')
			b.WriteByte('\n')
		}
	}
	msgs := d.ex.Messages()
	if len(msgs) > 0 {
		b.WriteString("messages:")
		for _, m := range msgs {
			fmt.Fprintf(&b, " %v→%v", m.From, m.To)
		}
		b.WriteByte('\n')
	}
	// Strip trailing cell padding so golden tests stay whitespace-clean.
	lines := strings.Split(b.String(), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " ")
	}
	return strings.Join(lines, "\n")
}

// cellWidth returns the character width of one event cell (marker + digits).
func (d *Diagram) cellWidth() int {
	maxPos := 1
	for p := 0; p < d.ex.NumProcs(); p++ {
		if tp := d.ex.TopPos(p); tp > maxPos {
			maxPos = tp
		}
	}
	return 1 + len(fmt.Sprint(maxPos))
}

// cell renders one event as marker+position padded to width cw, followed by
// a separating space. Dummies render as ⊥ / ⊤.
func (d *Diagram) cell(e poset.EventID, cw int) string {
	var body string
	switch {
	case d.ex.IsBottom(e):
		body = "⊥"
	case d.ex.IsTop(e):
		body = "⊤"
	default:
		marker := byte('.')
		if m, ok := d.markers[e]; ok {
			marker = m
		}
		body = fmt.Sprintf("%c%d", marker, e.Pos)
	}
	// Pad to cw display columns (⊥/⊤ are single-column runes).
	pad := cw - len([]rune(body))
	if pad < 0 {
		pad = 0
	}
	return body + strings.Repeat(" ", pad) + " "
}

// ColumnOf reports the display-rune column of event e's cell start in its
// rendered timeline row; exported for the tests that verify marker
// alignment.
func (d *Diagram) ColumnOf(e poset.EventID) int {
	gut := 1 + len(fmt.Sprint(d.ex.NumProcs()-1))
	for _, nc := range d.cuts {
		if w := len([]rune(nc.name)) + 1; w > gut {
			gut = w
		}
	}
	return gut + 2 + e.Pos*(d.cellWidth()+1)
}
