package render

import (
	"fmt"
	"strings"

	"causet/internal/cuts"
	"causet/internal/poset"
)

// Timeline renders an execution in the style of the paper's figures: one
// horizontal lane per process with events placed at globally ordered
// columns (a linear extension), message arrows drawn between lanes, and
// optional cut-surface markers. Unlike Diagram — which is compact and
// per-node-positional — Timeline makes causality visually followable:
// every message arrow points rightward and downward/upward to its receive.
//
// Layout: each real event occupies one column; lanes are separated by gap
// rows through which message connectors run:
//
//	p0 ─●────────●─
//	     └──────┐
//	p1 ─────●───▼──
//
// (The send's connector drops from its column, runs horizontally in the gap
// row above the receiving lane, and ends with an arrowhead at the receive's
// column. Crossing connectors overwrite each other pixel-wise; for dense
// executions prefer Diagram.)
type Timeline struct {
	ex      *poset.Execution
	markers map[poset.EventID]byte
	cuts    []namedCut
}

// NewTimeline creates an empty timeline for ex.
func NewTimeline(ex *poset.Execution) *Timeline {
	return &Timeline{ex: ex, markers: make(map[poset.EventID]byte)}
}

// Mark sets the glyph for the given real events ('●' by default, rendered
// as '*' when unmarked). Panics on dummy or invalid events.
func (tl *Timeline) Mark(events []poset.EventID, marker byte) *Timeline {
	for _, e := range events {
		if !tl.ex.IsReal(e) {
			panic(fmt.Sprintf("render: Timeline.Mark of non-real event %v", e))
		}
		tl.markers[e] = marker
	}
	return tl
}

// AddCut registers a cut whose surface is marked with '|' bars right after
// the frontier event of each lane, labeled in the legend.
func (tl *Timeline) AddCut(name string, c cuts.Cut) *Timeline {
	if len(c) != tl.ex.NumProcs() {
		panic(fmt.Sprintf("render: cut %q has %d components for %d processes", name, len(c), tl.ex.NumProcs()))
	}
	tl.cuts = append(tl.cuts, namedCut{name: name, c: c})
	return tl
}

// Render draws the timeline.
func (tl *Timeline) Render() string {
	ex := tl.ex
	order := ex.LinearExtension()
	col := make(map[poset.EventID]int, len(order))
	const colWidth = 3
	left := len(fmt.Sprintf("p%d ", ex.NumProcs()-1))
	for i, e := range order {
		col[e] = left + 1 + i*colWidth
	}
	width := left + 1 + len(order)*colWidth + 2

	// Canvas: one lane row per process plus one gap row between lanes.
	rows := ex.NumProcs()*2 - 1
	canvas := make([][]byte, rows)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	laneRow := func(p int) int { return p * 2 }

	// Lanes.
	for p := 0; p < ex.NumProcs(); p++ {
		r := laneRow(p)
		label := fmt.Sprintf("p%d ", p)
		copy(canvas[r], label)
		for c := left; c < width-1; c++ {
			canvas[r][c] = '-'
		}
		for pos := 1; pos <= ex.NumReal(p); pos++ {
			e := poset.EventID{Proc: p, Pos: pos}
			glyph := byte('*')
			if m, ok := tl.markers[e]; ok {
				glyph = m
			}
			canvas[r][col[e]] = glyph
		}
	}

	// Message connectors.
	for _, m := range ex.Messages() {
		cs, cr := col[m.From], col[m.To]
		rs, rr := laneRow(m.From.Proc), laneRow(m.To.Proc)
		dir := 1
		if rr < rs {
			dir = -1
		}
		// Vertical from just past the send row to the gap row adjacent to
		// the receive row.
		for r := rs + dir; r != rr-dir; r += dir {
			put(canvas, r, cs, '|')
		}
		gap := rr - dir
		// Horizontal run in the gap row, then the arrowhead on the lane.
		put(canvas, gap, cs, '+')
		for c := cs + 1; c < cr; c++ {
			put(canvas, gap, c, '-')
		}
		put(canvas, gap, cr, '+')
		if dir > 0 {
			put(canvas, rr, cr, 'v')
		} else {
			put(canvas, rr, cr, '^')
		}
		// Keep the receive glyph visible next to the arrowhead: the arrow
		// lands on the event's column, so re-stamp the glyph one step right
		// would misalign — instead the arrowhead replaces the glyph, which
		// the legend explains.
	}

	var b strings.Builder
	for _, row := range canvas {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}

	// Cut markers: a labeled line per cut listing per-lane bars would be
	// noisy in this mode; instead, emit a legend line with the frontier
	// columns per lane.
	for _, nc := range tl.cuts {
		fmt.Fprintf(&b, "cut %s:", nc.name)
		for p, f := range nc.c {
			e := poset.EventID{Proc: p, Pos: f}
			switch {
			case f == 0:
				fmt.Fprintf(&b, " p%d:⊥", p)
			case f > tl.ex.NumReal(p):
				fmt.Fprintf(&b, " p%d:⊤", p)
			default:
				fmt.Fprintf(&b, " p%d:col%d", p, col[e])
			}
		}
		b.WriteByte('\n')
	}
	if len(ex.Messages()) > 0 {
		b.WriteString("legend: * event (v/^ = receive), | + - message path\n")
	}
	return b.String()
}

// put writes a byte if the cell is within the canvas, preferring connector
// glyphs not to erase event glyphs.
func put(canvas [][]byte, r, c int, ch byte) {
	if r < 0 || r >= len(canvas) || c < 0 || c >= len(canvas[r]) {
		return
	}
	cur := canvas[r][c]
	// Do not erase event glyphs with plain connector strokes; crossings of
	// two connectors become '+'.
	if cur != ' ' && cur != '-' {
		if (ch == '|' || ch == '-') && (cur == '|' || cur == '+') {
			canvas[r][c] = '+'
			return
		}
		// Arrowheads replace only the default event glyph; caller-chosen
		// marks (interval membership, proxies) take precedence so marked
		// receives stay identifiable.
		if (ch == 'v' || ch == '^') && cur == '*' {
			canvas[r][c] = ch
		}
		return
	}
	canvas[r][c] = ch
}
