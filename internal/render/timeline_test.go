package render

import (
	"math/rand"
	"strings"
	"testing"

	"causet/internal/cuts"
	"causet/internal/poset"
	"causet/internal/poset/posettest"
)

func timelineFixture(t *testing.T) *poset.Execution {
	t.Helper()
	b := poset.NewBuilder(3)
	a1 := b.Append(0)
	b1 := b.Append(1)
	if err := b.Message(a1, b1); err != nil {
		t.Fatal(err)
	}
	b2 := b.Append(1)
	b.Append(2)
	c2 := b.Append(2)
	if err := b.Message(b2, c2); err != nil {
		t.Fatal(err)
	}
	b.Append(0)
	return b.MustBuild()
}

func TestTimelineGolden(t *testing.T) {
	ex := timelineFixture(t)
	got := NewTimeline(ex).Render()
	// Linear extension order: a1, c1, a2, b1, b2, c2 — so the columns are
	// a1=4, c1=7, a2=10, b1=13, b2=16, c2=19.
	want := strings.Join([]string{
		"p0 -*-----*------------",
		"    +--------+",
		"p1 ----------v--*------",
		"                +--+",
		"p2 ----*-----------v---",
		"legend: * event (v/^ = receive), | + - message path",
		"",
	}, "\n")
	if got != want {
		t.Errorf("timeline mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTimelineStructure(t *testing.T) {
	r := rand.New(rand.NewSource(503))
	for trial := 0; trial < 15; trial++ {
		ex := posettest.Random(r, 2+trial%3, 6+trial, 0.5)
		out := NewTimeline(ex).Render()
		lines := strings.Split(out, "\n")
		// One lane line per process, identifiable by its label.
		for p := 0; p < ex.NumProcs(); p++ {
			found := false
			for _, l := range lines {
				if strings.HasPrefix(l, "p"+string(rune('0'+p))+" ") {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: lane p%d missing:\n%s", trial, p, out)
			}
		}
		// Every event appears: count glyphs (either '*' or arrowheads).
		glyphs := strings.Count(out, "*") + strings.Count(out, "v") + strings.Count(out, "^")
		// The legend contributes fixed glyphs; subtract its line.
		if len(ex.Messages()) > 0 {
			legend := "legend: * event (v/^ = receive), | + - message path"
			glyphs -= strings.Count(legend, "*") + strings.Count(legend, "v") + strings.Count(legend, "^")
		}
		if glyphs < ex.NumEvents() {
			t.Fatalf("trial %d: %d glyphs for %d events:\n%s", trial, glyphs, ex.NumEvents(), out)
		}
	}
}

func TestTimelineMarksAndCuts(t *testing.T) {
	ex := timelineFixture(t)
	tl := NewTimeline(ex).
		Mark([]poset.EventID{{Proc: 0, Pos: 1}}, 'X').
		AddCut("C1", cuts.Cut{1, 0, 3})
	out := tl.Render()
	if !strings.Contains(out, "X") {
		t.Errorf("mark missing:\n%s", out)
	}
	if !strings.Contains(out, "cut C1:") || !strings.Contains(out, "p1:⊥") || !strings.Contains(out, "p2:⊤") {
		t.Errorf("cut legend missing or wrong:\n%s", out)
	}
}

func TestTimelinePanics(t *testing.T) {
	ex := timelineFixture(t)
	for _, fn := range []func(){
		func() { NewTimeline(ex).Mark([]poset.EventID{ex.Bottom(0)}, '*') },
		func() { NewTimeline(ex).AddCut("bad", cuts.Cut{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}
