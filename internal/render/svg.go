package render

import (
	"fmt"
	"sort"
	"strings"

	"causet/internal/cuts"
	"causet/internal/poset"
)

// SVG renders an execution as a scalable vector graphic in the visual
// style of the paper's figures: horizontal process lines, filled circles
// for events (shaded for marked ones), arrows for messages, and smooth
// polylines crossing the timelines for registered cut surfaces. The output
// is self-contained SVG 1.1 with no external resources, suitable for
// embedding in documentation.
//
// Geometry follows the Timeline layout: events are placed at globally
// ordered columns (a linear extension), so message arrows always point
// rightward.
type SVG struct {
	ex      *poset.Execution
	marked  map[poset.EventID]bool
	labels  map[poset.EventID]string
	cutList []namedCut
}

// NewSVG creates an empty SVG rendering for ex.
func NewSVG(ex *poset.Execution) *SVG {
	return &SVG{
		ex:     ex,
		marked: make(map[poset.EventID]bool),
		labels: make(map[poset.EventID]string),
	}
}

// Mark shades the given real events (the figures' "shaded circles" for the
// members of a nonatomic event). Panics on non-real events.
func (s *SVG) Mark(events []poset.EventID) *SVG {
	for _, e := range events {
		if !s.ex.IsReal(e) {
			panic(fmt.Sprintf("render: SVG.Mark of non-real event %v", e))
		}
		s.marked[e] = true
	}
	return s
}

// Label attaches a text label to an event (drawn above it).
func (s *SVG) Label(e poset.EventID, text string) *SVG {
	if !s.ex.IsReal(e) {
		panic(fmt.Sprintf("render: SVG.Label of non-real event %v", e))
	}
	s.labels[e] = text
	return s
}

// AddCut registers a cut; its surface is drawn as a labeled dashed polyline
// crossing each timeline just after the cut's frontier event.
func (s *SVG) AddCut(name string, c cuts.Cut) *SVG {
	if len(c) != s.ex.NumProcs() {
		panic(fmt.Sprintf("render: cut %q has %d components for %d processes", name, len(c), s.ex.NumProcs()))
	}
	s.cutList = append(s.cutList, namedCut{name: name, c: c})
	return s
}

// Geometry constants (user units).
const (
	svgColW    = 46 // horizontal distance between event columns
	svgRowH    = 64 // vertical distance between process lines
	svgMarginX = 70 // left margin (process labels)
	svgMarginY = 40 // top margin
	svgRadius  = 6  // event circle radius
)

// Render produces the SVG document.
func (s *SVG) Render() string {
	ex := s.ex
	order := ex.LinearExtension()
	colOf := make(map[poset.EventID]int, len(order))
	for i, e := range order {
		colOf[e] = i
	}
	x := func(e poset.EventID) int { return svgMarginX + colOf[e]*svgColW }
	y := func(p int) int { return svgMarginY + p*svgRowH }
	width := svgMarginX + len(order)*svgColW + svgMarginX/2
	height := svgMarginY + (ex.NumProcs()-1)*svgRowH + svgMarginY + 20*len(s.cutList)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n",
		width, height, width, height)
	b.WriteString(`<defs><marker id="arr" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="7" markerHeight="7" orient="auto-start-reverse"><path d="M 0 0 L 10 5 L 0 10 z"/></marker></defs>` + "\n")

	// Process lines and labels.
	for p := 0; p < ex.NumProcs(); p++ {
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
			svgMarginX-30, y(p), width-10, y(p))
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">p%d</text>`+"\n",
			svgMarginX-36, y(p)+4, p)
	}

	// Messages (under the event circles).
	for _, m := range ex.Messages() {
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black" stroke-width="0.8" marker-end="url(#arr)"/>`+"\n",
			x(m.From), y(m.From.Proc), x(m.To), y(m.To.Proc))
	}

	// Events.
	for _, e := range order {
		fill := "white"
		if s.marked[e] {
			fill = "#444"
		}
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="%d" fill="%s" stroke="black"/>`+"\n",
			x(e), y(e.Proc), svgRadius, fill)
		if label, ok := s.labels[e]; ok {
			fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
				x(e), y(e.Proc)-svgRadius-4, escape(label))
		}
	}

	// Cut surfaces: a dashed polyline through the midpoint after each
	// lane's frontier event (or before the lane's first column for an
	// empty prefix), labeled at the top.
	for k, nc := range s.cutList {
		dash := 3 + 2*k
		var pts []string
		for p := 0; p < ex.NumProcs(); p++ {
			cx := svgMarginX - 18 // frontier at ⊥: left of everything
			if f := nc.c[p]; f >= 1 {
				pos := f
				if pos > ex.NumReal(p) {
					pos = ex.NumReal(p) // ⊤: right of the last real event
					cx = x(poset.EventID{Proc: p, Pos: pos}) + svgColW/2
				} else {
					cx = x(poset.EventID{Proc: p, Pos: pos}) + svgColW/3
				}
				if ex.NumReal(p) == 0 {
					cx = svgMarginX - 18
				}
			}
			pts = append(pts, fmt.Sprintf("%d,%d", cx, y(p)-svgRowH/3), fmt.Sprintf("%d,%d", cx, y(p)+svgRowH/3))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="black" stroke-dasharray="%d,3"/>`+"\n",
			strings.Join(pts, " "), dash)
		firstX := strings.SplitN(pts[0], ",", 2)[0]
		fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle">%s</text>`+"\n",
			firstX, svgMarginY-20, escape(nc.name))
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// escape makes a string safe for SVG text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// SortedMarked returns the marked events in (Proc, Pos) order; exported for
// tests.
func (s *SVG) SortedMarked() []poset.EventID {
	out := make([]poset.EventID, 0, len(s.marked))
	for e := range s.marked {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
