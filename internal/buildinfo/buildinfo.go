// Package buildinfo surfaces the build metadata the Go toolchain embeds in
// every binary (runtime/debug.ReadBuildInfo): module version, VCS revision,
// commit time, and dirty flag. The CLIs print it behind -version, and
// long-running processes register it as the causet_build_info instrument so
// a Prometheus scrape identifies exactly which build produced its series —
// the standard build_info convention.
//
// Nothing here requires linker flags: builds from a git checkout get the
// revision stamped automatically, `go install`ed module builds get the
// module version, and bare `go build` in tests degrades to "(devel)" with
// empty VCS fields.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"causet/internal/obs"
)

// Info is the build metadata of the running binary. Zero fields mean the
// toolchain did not embed that datum (e.g. no VCS stamping outside a
// repository).
type Info struct {
	Version   string `json:"version"`            // module version, "(devel)" for local builds
	GoVersion string `json:"go_version"`         // toolchain that built the binary
	Revision  string `json:"revision,omitempty"` // VCS commit hash
	Time      string `json:"time,omitempty"`     // VCS commit time, RFC 3339
	Dirty     bool   `json:"dirty,omitempty"`    // uncommitted changes at build time
}

// Current reads the running binary's embedded metadata. It never fails:
// fields the build did not stamp are left zero, and GoVersion falls back to
// runtime.Version().
func Current() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Version = bi.Main.Version
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// Short compresses the metadata to one token: the module version, plus an
// abbreviated revision (and "-dirty" marker) when the VCS stamped one.
func (i Info) Short() string {
	v := i.Version
	if v == "" {
		v = "(devel)"
	}
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Dirty {
			rev += "-dirty"
		}
		v += "+" + rev
	}
	return v
}

// Print writes the banner the CLIs emit for -version:
//
//	relcheck (devel)+1a2b3c4d5e6f (go1.24.2, commit 2026-08-01T12:00:00Z)
func (i Info) Print(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s (%s", name, i.Short(), i.GoVersion)
	if i.Time != "" {
		fmt.Fprintf(w, ", commit %s", i.Time)
	}
	fmt.Fprintln(w, ")")
}

// Register publishes the metadata as the causet_build_info instrument: a
// constant gauge fixed at 1 whose labels carry the strings, following the
// Prometheus build_info convention. No-op on a nil registry.
func (i Info) Register(reg *obs.Registry) {
	labels := map[string]string{
		"version":    i.Short(),
		"go_version": i.GoVersion,
	}
	if i.Revision != "" {
		labels["revision"] = i.Revision
	}
	if i.Time != "" {
		labels["commit_time"] = i.Time
	}
	reg.Info("causet_build_info", labels)
}
