package buildinfo

import (
	"strings"
	"testing"

	"causet/internal/obs"
)

func TestCurrentNeverEmpty(t *testing.T) {
	info := Current()
	if info.GoVersion == "" {
		t.Error("GoVersion must always be populated")
	}
	if info.Short() == "" {
		t.Error("Short() must never be empty")
	}
}

func TestShort(t *testing.T) {
	cases := []struct {
		in   Info
		want string
	}{
		{Info{}, "(devel)"},
		{Info{Version: "v1.2.3"}, "v1.2.3"},
		{Info{Version: "(devel)", Revision: "0123456789abcdef"}, "(devel)+0123456789ab"},
		{Info{Version: "(devel)", Revision: "abc123", Dirty: true}, "(devel)+abc123-dirty"},
	}
	for _, c := range cases {
		if got := c.in.Short(); got != c.want {
			t.Errorf("Short(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrint(t *testing.T) {
	var sb strings.Builder
	Info{Version: "v0.1.0", GoVersion: "go1.24", Time: "2026-08-01T00:00:00Z"}.Print(&sb, "relcheck")
	want := "relcheck v0.1.0 (go1.24, commit 2026-08-01T00:00:00Z)\n"
	if sb.String() != want {
		t.Errorf("Print = %q, want %q", sb.String(), want)
	}
}

func TestRegister(t *testing.T) {
	reg := obs.New()
	Info{Version: "v0.1.0", GoVersion: "go1.24", Revision: "abc", Dirty: true}.Register(reg)
	snap := reg.Snapshot()
	labels, ok := snap.Infos["causet_build_info"]
	if !ok {
		t.Fatalf("causet_build_info not registered; infos = %v", snap.Infos)
	}
	if labels["version"] != "v0.1.0+abc-dirty" || labels["go_version"] != "go1.24" {
		t.Errorf("labels = %v", labels)
	}
	// Nil registry must be a no-op, not a panic.
	Info{}.Register(nil)
}
