// Facade surface test: every public wrapper of package causet is exercised
// once against a small fixture, so the exported API is compile- and
// behavior-checked as a whole.
package causet_test

import (
	"testing"
	"time"

	"causet"
)

func facadeFixture(t *testing.T) (*causet.Execution, *causet.Interval, *causet.Interval) {
	t.Helper()
	b := causet.NewBuilder(3)
	x1 := b.Append(0)
	y1 := b.Append(1)
	if err := b.Message(x1, y1); err != nil {
		t.Fatal(err)
	}
	y2 := b.Append(1)
	b.Append(2)
	ex, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x, err := causet.NewInterval(ex, []causet.EventID{x1})
	if err != nil {
		t.Fatal(err)
	}
	y, err := causet.NewInterval(ex, []causet.EventID{y1, y2})
	if err != nil {
		t.Fatal(err)
	}
	return ex, x, y
}

func TestFacadeClocksAndKnowledge(t *testing.T) {
	ex, x, y := facadeFixture(t)
	clk := causet.NewClocks(ex)
	common := causet.CommonKnowledgePrefix(clk, y)
	collective := causet.CollectiveKnowledgePrefix(clk, y)
	if !common.Subset(collective) {
		t.Errorf("∩⇓Y ⊄ ∪⇓Y")
	}
	yEvents := y.Events()
	if !causet.Knows(clk, yEvents[len(yEvents)-1], common) {
		t.Errorf("latest y does not know the common prefix")
	}
	if fl := causet.FirstLearners(clk, x); len(fl) == 0 {
		t.Errorf("no first learners of X")
	}
	if fl := causet.FullLearners(clk, x); len(fl) == 0 {
		t.Errorf("no full learners of X")
	}
}

func TestFacadeParsers(t *testing.T) {
	if r, err := causet.ParseRelation("R2'"); err != nil || r != causet.R2Prime {
		t.Errorf("ParseRelation: %v, %v", r, err)
	}
	if all := causet.AllRel32(); len(all) != 32 {
		t.Errorf("AllRel32: %d", len(all))
	}
	if r32, err := causet.ParseRel32("R4(L,U)"); err != nil || r32.R != causet.R4 {
		t.Errorf("ParseRel32: %v, %v", r32, err)
	}
	expr, err := causet.ParseCondition("R1(a, b) -> R4(a, b)")
	if err != nil || expr == nil {
		t.Errorf("ParseCondition: %v", err)
	}
}

func TestFacadeAlgebra(t *testing.T) {
	if !causet.Implies(causet.R1, causet.R4) || causet.Implies(causet.R4, causet.R1) {
		t.Errorf("Implies wrong")
	}
	if causet.Converse(causet.R2) != causet.R3Prime {
		t.Errorf("Converse wrong")
	}
	if tRel, ok := causet.Compose(causet.R1, causet.R1); !ok || tRel != causet.R1 {
		t.Errorf("Compose wrong")
	}
	max := causet.StrongestRelations([]causet.Relation{causet.R4, causet.R2})
	if len(max) != 1 || max[0] != causet.R2 {
		t.Errorf("StrongestRelations = %v", max)
	}

	ex, x, y := facadeFixture(t)
	a := causet.NewAnalysis(ex)
	pm, err := causet.Summarize(a, causet.NewFast(a), []string{"x", "y"}, []*causet.Interval{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Cells[0][1].Strongest) == 0 {
		t.Errorf("x→y should hold something (x1 ≺ y1)")
	}
}

func TestFacadeReversal(t *testing.T) {
	ex, _, _ := facadeFixture(t)
	rev := causet.ReverseExecution(ex)
	a := causet.EventID{Proc: 0, Pos: 1}
	b := causet.EventID{Proc: 1, Pos: 1}
	if !ex.Precedes(a, b) {
		t.Fatalf("fixture drifted")
	}
	if !rev.Precedes(causet.ReverseEventID(ex, b), causet.ReverseEventID(ex, a)) {
		t.Errorf("reversal did not invert causality")
	}
}

func TestFacadeDetector(t *testing.T) {
	ex, x, y := facadeFixture(t)
	d := causet.NewDetector(ex, 0)
	phi := causet.AndStates(causet.AllDone(x), causet.NoneStarted(y))
	got, err := d.Definitely(phi)
	if err != nil {
		t.Fatal(err)
	}
	// x1 ≺ every y, so R1(x, y) holds and the bridge theorem gives
	// Definitely = true.
	if !got {
		t.Errorf("Definitely = false, want true (R1 holds)")
	}
}

func TestFacadeTiming(t *testing.T) {
	ex, x, y := facadeFixture(t)
	tm := causet.SynthesizeTiming(ex, causet.TimingConfig{Seed: 3})
	if tm.ResponseTime(x, y) <= 0 {
		t.Errorf("response time not positive")
	}
	if _, err := causet.NewTiming(ex, tm.Times()); err != nil {
		t.Errorf("synthesized timing failed validation: %v", err)
	}
	if !tm.WithinDeadline(x, y, time.Hour) {
		t.Errorf("hour-long deadline missed")
	}
}
