module causet

go 1.22
